// Package server implements appclassd, the long-running classification
// daemon: a concurrent HTTP service that classifies metric streams from
// many VMs at once against one trained classification center. Each VM
// gets a session in a mutex-striped registry wrapping a
// classify.Online instance; snapshots arrive either over the push API
// (POST /v1/ingest) or by polling a gmetad aggregator, query endpoints
// expose per-VM state and cluster-wide class counts for class-aware
// placement, and sessions are finalized into the application database
// on explicit finish, idle-TTL expiry, or graceful shutdown — the
// online half of the paper's Figure-1 loop running as a service.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/phase"
	"repro/internal/placement"
	"repro/internal/resilience"
	"repro/internal/supervise"
	"repro/internal/wal"
)

// Config parameterizes the daemon.
type Config struct {
	// Classifier is the trained classification center (required).
	Classifier *classify.Classifier
	// Schema describes incoming snapshots. Nil means the canonical
	// 33-metric schema.
	Schema *metrics.Schema
	// DB receives finalized session records. Nil means a fresh
	// in-memory database.
	DB *appdb.DB
	// IdleTTL is how long a session may go without snapshots before the
	// janitor finalizes and evicts it. Zero means 5 minutes.
	IdleTTL time.Duration
	// SweepInterval is the janitor's cadence. Zero means IdleTTL / 4.
	SweepInterval time.Duration
	// Shards sets the registry stripe count. Zero means 16.
	Shards int
	// Placement is the class-aware placement service exposed under
	// /v1/placements and /v1/hosts. Nil disables the placement API (the
	// endpoints answer 503). The server wires the service's live
	// composition lookup to its session registry.
	Placement *placement.Service
	// Journal, when non-nil, makes ingest durable: every validated batch
	// is appended to the write-ahead journal before it is classified, a
	// finalize marker is journaled when a session ends, and Recover
	// rebuilds live sessions from the latest checkpoint plus the journal
	// tail after a crash. Nil keeps the daemon purely in-memory. The
	// caller owns the journal (and closes it after Shutdown).
	Journal *wal.Journal
	// CheckpointEvery is the cadence of the background checkpointer
	// started by StartCheckpointer. Zero means 30 seconds. Ignored
	// without a Journal.
	CheckpointEvery time.Duration
	// MaxInflightBytes bounds the total request-body bytes of ingest
	// requests in flight; requests over budget are shed with
	// 429 Retry-After instead of queueing. Zero means 64 MiB, negative
	// disables the byte budget.
	MaxInflightBytes int64
	// MaxInflightRequests bounds concurrent ingest requests the same
	// way. Zero means 256, negative disables the request budget.
	MaxInflightRequests int64
	// IngestTimeout bounds the handling of one ingest request; a batch
	// that cannot finish classifying within it is abandoned with 503.
	// Zero means no deadline.
	IngestTimeout time.Duration
	// DegradeOnWALError selects what a journal append failure does to
	// ingest: false (default) rejects the batch with 500 so no
	// acknowledged state can outrun the journal; true flips the daemon
	// into degraded durability mode — ingest continues memory-only,
	// /readyz answers 503, and rate-limited probes re-arm the journal
	// once the fault heals. Ignored without a Journal.
	DegradeOnWALError bool
	// DegradedProbeEvery rate-limits journal re-arm probes while
	// degraded. Zero means 5 seconds.
	DegradedProbeEvery time.Duration
	// SegmentWindow is the phase segmenter's half-window in snapshots:
	// boundaries are detected by comparing the mean fused feature vector
	// of the newest SegmentWindow snapshots against the SegmentWindow
	// before them. Zero means 8; negative disables online phase
	// segmentation entirely.
	SegmentWindow int
	// SegmentMinLen is the minimum phase length in snapshots. Zero
	// means 5.
	SegmentMinLen int
	// SegmentThreshold is the mean-shift distance in fused feature space
	// above which a phase boundary is declared. Zero means 1.0.
	SegmentThreshold float64
	// UnknownSlack scales the calibrated open-set thresholds: a snapshot
	// whose kth-neighbor distance exceeds slack x the training
	// self-distance quantile of its voted class counts as unknown. Zero
	// means 3.0; negative disables the open-set UNKNOWN test.
	UnknownSlack float64
	// UnknownQuantile is the per-class training self-distance quantile
	// the thresholds calibrate from. Zero means 0.99.
	UnknownQuantile float64
	// RecoverForce lets Recover proceed past a model-hash mismatch
	// between the on-disk checkpoint/journal and the configured model:
	// mismatching checkpoints are discarded (their session states were
	// serialized under a different model) and the journal tail is
	// replayed from scratch under the current model. Off by default —
	// a mismatch refuses recovery with a clear error.
	RecoverForce bool
	// TrainReservoir caps the per-session reservoir of raw snapshot rows
	// retained for online retraining. Zero means
	// classify.DefaultTrainReservoir; negative disables sampling (and
	// with it retraining from this daemon's records).
	TrainReservoir int
	// ModelDir, when set, confines POST /v1/models artifact paths: load
	// requests are resolved relative to it and may not escape it. Empty
	// means paths are taken as given (trusted operators only).
	ModelDir string
	// RetrainEvery is the online-retraining cadence of StartRetrainer:
	// every tick the daemon refits a classifier from the labeled
	// finalized sessions in the application database and shadow-evaluates
	// the result. Zero or negative disables retraining.
	RetrainEvery time.Duration
	// RetrainOut, when set, is where the retrainer persists each refit
	// artifact (atomic rename), ready for appdbtool inspection or manual
	// loading into another daemon.
	RetrainOut string
	// RetrainMinRows is the minimum retained sample rows a class needs to
	// participate in a retrain. Zero means modelreg's default.
	RetrainMinRows int
	// DisableBinaryIngest removes POST /v1/ingest.bin from the API. The
	// binary columnar fast path is on by default; disabling it leaves
	// JSON as the only ingest format.
	DisableBinaryIngest bool
	// ScrubEvery is the background storage scrubber's cadence: every
	// tick it verifies one sealed journal segment and one closed
	// application-database segment frame-by-frame, repairing damage by
	// copy-forward and quarantining the damaged original. Zero or
	// negative disables scrubbing (appclassd enables it by default).
	ScrubEvery time.Duration
	// StoreMaintEvery is the cadence of the store maintenance task,
	// which compacts tombstoned application-database records between
	// segment rotations. Zero or negative disables it; it is a no-op on
	// the in-memory engine either way.
	StoreMaintEvery time.Duration
	// ProbationWindow puts every promoted model on probation: for this
	// long after a hot swap, the displaced model keeps classifying the
	// live traffic in shadow (the PR-7 machinery run in reverse) and a
	// breach of the guardrails below rolls the promotion back
	// automatically through the same atomic swap. Zero or negative
	// disables promotion guardrails.
	ProbationWindow time.Duration
	// ProbationUnknownFactor triggers a rollback when the new model's
	// open-set unknown rate reaches this multiple of the displaced
	// model's rate over the same snapshots (with an absolute floor, so
	// 0 vs 0.001 does not trip it). Zero means 3.
	ProbationUnknownFactor float64
	// ProbationDisagreeThreshold triggers a rollback when, for any
	// class, the displaced model disagrees with this fraction (or more)
	// of the new model's votes. Zero means 0.9.
	ProbationDisagreeThreshold float64
	// ProbationMinSnapshots is how many snapshots probation must observe
	// before the guardrails can trip (per class, a tenth of it). Zero
	// means 50.
	ProbationMinSnapshots int64
	// TaskBackoff schedules supervised-task restart delays after panics.
	// Zero-valued fields get supervise's defaults (base 1s, max 1m).
	TaskBackoff resilience.Backoff
	// TaskMaxRestarts is how many consecutive panics escalate a
	// supervised task into the degraded state /readyz reports. Zero
	// means 5.
	TaskMaxRestarts int
	// TaskIntercept, when set, runs at the top of every supervised task
	// attempt. It exists for fault injection (faultinject.TaskChaos
	// panics or blocks inside it); production leaves it nil.
	TaskIntercept func(task string)
	// Dashboard mounts the embedded control-plane dashboard under
	// /dashboard/ (appclassd -dashboard): live sessions, class mix,
	// breaker/durability state, and paginated finalized runs, all served
	// from assets compiled into the binary. Off by default; the JSON
	// endpoints backing it (/v1/runs, /v1/status) are always on.
	Dashboard bool
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the daemon's mux. Off by default: the profiler
	// exposes goroutine stacks and heap contents, so it is opt-in
	// (appclassd -pprof).
	EnablePprof bool
	// Now supplies wall-clock time; tests inject fake clocks. Nil means
	// time.Now.
	Now func() time.Time
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// Server is the appclassd daemon.
type Server struct {
	cfg      Config
	reg      *registry
	counters *counters
	mux      *http.ServeMux
	start    time.Time
	// valuesPool recycles schema-length value buffers for the by-name
	// ingest decode path; Online does not retain snapshot values, so a
	// buffer can go back to the pool as soon as its batch is observed.
	valuesPool sync.Pool

	// ckptMu orders ingest against checkpoints: the journal-append +
	// classify pair in observe/observeBatch (and the journal-append +
	// finalize pair in finalize) runs under the read side, and Checkpoint
	// takes the write side so the journal position it records and the
	// session states it serializes are one consistent cut — replay from a
	// checkpoint neither double-applies nor loses a record.
	ckptMu sync.RWMutex
	// ckptKick nudges the checkpointer loop after a finalization so the
	// finalize record's effect is captured promptly.
	ckptKick chan struct{}

	// segCfg is the phase segmenter configuration applied to every new
	// session (nil with segmentation disabled). Immutable after New.
	segCfg *phase.Config

	// models is the versioned model registry; active is the serving
	// model + open-set threshold pair, swapped atomically by Promote;
	// shadow is the candidate evaluation riding along live traffic (nil
	// when no candidate is staged); probation is the reverse evaluation
	// guarding the most recent promote (nil outside a probation window).
	// swapMu serializes model lifecycle transitions (load, promote,
	// discard, retrain-install, rollback) against each other — never
	// held during classification.
	models    *modelreg.Registry
	active    atomic.Pointer[activeModel]
	shadow    atomic.Pointer[shadowEval]
	probation atomic.Pointer[probationEval]
	swapMu    sync.Mutex

	// sup keeps the daemon's long-lived background loops (janitor,
	// checkpointer, poller, retrainer, store maintenance, scrubber,
	// probation watcher) alive across panics and observable when wedged.
	sup *supervise.Supervisor

	// admit sheds push-path load before it reaches any lock; degraded
	// tracks whether ingest is currently memory-only because the journal
	// is failing.
	admit    admission
	degraded degradedState

	// binStreams holds the negotiated binary-ingest streams, and
	// binScratch recycles the binary handler's per-request workspace.
	binStreams binRegistry
	binScratch sync.Pool

	mu      sync.Mutex
	httpSrv *http.Server
	stopc   chan struct{}
	stopped bool
	loops   sync.WaitGroup
}

// New builds a daemon. No goroutines are started: callers serve the
// Handler (or call Serve/ListenAndServe) and opt into StartJanitor and
// StartPoller, and must Shutdown to flush open sessions.
func New(cfg Config) (*Server, error) {
	if cfg.Classifier == nil {
		return nil, fmt.Errorf("server: nil classifier")
	}
	if cfg.Schema == nil {
		cfg.Schema = metrics.DefaultSchema()
	}
	if cfg.DB == nil {
		cfg.DB = appdb.New()
	}
	if cfg.IdleTTL <= 0 {
		cfg.IdleTTL = 5 * time.Minute
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.IdleTTL / 4
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 30 * time.Second
	}
	if cfg.MaxInflightBytes == 0 {
		cfg.MaxInflightBytes = defaultMaxInflightBytes
	}
	if cfg.MaxInflightRequests == 0 {
		cfg.MaxInflightRequests = defaultMaxInflightRequests
	}
	if cfg.DegradedProbeEvery <= 0 {
		cfg.DegradedProbeEvery = defaultDegradedProbeEvery
	}
	if cfg.ProbationUnknownFactor <= 0 {
		cfg.ProbationUnknownFactor = defaultProbationUnknownFactor
	}
	if cfg.ProbationDisagreeThreshold <= 0 {
		cfg.ProbationDisagreeThreshold = defaultProbationDisagreeThreshold
	}
	if cfg.ProbationMinSnapshots <= 0 {
		cfg.ProbationMinSnapshots = defaultProbationMinSnapshots
	}
	// Fail fast on a classifier/schema mismatch instead of on the first
	// ingest request.
	if _, err := classify.NewOnline(cfg.Classifier, cfg.Schema); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		reg:      newRegistry(cfg.Shards),
		counters: newCounters(),
		stopc:    make(chan struct{}),
		ckptKick: make(chan struct{}, 1),
	}
	s.start = cfg.Now()
	if cfg.MaxInflightBytes > 0 {
		s.admit.maxBytes = cfg.MaxInflightBytes
	}
	if cfg.MaxInflightRequests > 0 {
		s.admit.maxRequests = cfg.MaxInflightRequests
	}
	s.valuesPool.New = func() any {
		b := make([]float64, cfg.Schema.Len())
		return &b
	}
	s.binScratch.New = func() any { return &binScratch{} }
	if cfg.Placement != nil {
		cfg.Placement.SetLive(s.liveComposition)
	}
	if cfg.SegmentWindow >= 0 {
		s.segCfg = &phase.Config{
			Window:    cfg.SegmentWindow,
			MinLen:    cfg.SegmentMinLen,
			Threshold: cfg.SegmentThreshold,
		}
	}
	var openset *classify.OpenSet
	if cfg.UnknownSlack >= 0 {
		os, err := cfg.Classifier.CalibrateOpenSet(classify.OpenSetConfig{
			Quantile: cfg.UnknownQuantile,
			Slack:    cfg.UnknownSlack,
		})
		if err != nil {
			return nil, fmt.Errorf("server: calibrate open-set thresholds: %w", err)
		}
		openset = os
	}

	// The boot model: the configured classifier under the effective
	// serving params, hashed, registered active, and stamped onto the
	// journal so every segment written from here carries its identity.
	params := modelreg.Params{
		OpenSetQuantile: -1, OpenSetSlack: -1,
		SegWindow: -1, SegMinLen: -1, SegThreshold: -1,
	}
	if openset != nil {
		oc := openset.Config()
		params.OpenSetQuantile, params.OpenSetSlack = oc.Quantile, oc.Slack
		for cl, cerr := range openset.SkippedClasses() {
			cfg.Logf("server: OPEN-SET CALIBRATION SKIPPED class %s: %v — the class will never flag unknown", cl, cerr)
		}
	}
	if s.segCfg != nil {
		params.SegWindow, params.SegMinLen, params.SegThreshold =
			cfg.SegmentWindow, cfg.SegmentMinLen, cfg.SegmentThreshold
		if params.SegWindow == 0 {
			params.SegWindow = phase.DefaultWindow
		}
		if params.SegMinLen == 0 {
			params.SegMinLen = phase.DefaultMinLen
		}
		if params.SegThreshold == 0 {
			params.SegThreshold = phase.DefaultThreshold
		}
	}
	boot, err := modelreg.NewModel(cfg.Classifier, params, "boot", s.start.UnixNano())
	if err != nil {
		return nil, fmt.Errorf("server: hash boot model: %w", err)
	}
	s.models = modelreg.NewRegistry(boot)
	s.active.Store(&activeModel{model: boot, openset: openset})
	if cfg.Journal != nil {
		if err := cfg.Journal.SetModelHash(boot.Hash); err != nil {
			return nil, fmt.Errorf("server: stamp journal with model hash: %w", err)
		}
	}
	cfg.Logf("server: model %s (hash %s) active", boot.ID, boot.Hash.String())
	s.sup = supervise.New(supervise.Config{
		Backoff:     cfg.TaskBackoff,
		MaxRestarts: cfg.TaskMaxRestarts,
		Now:         cfg.Now,
		Logf:        cfg.Logf,
		Intercept:   cfg.TaskIntercept,
		OnEscalate: func(task string, restarts int64, lastPanic string) {
			s.putEvent("task_escalated", map[string]string{
				"task":     task,
				"restarts": fmt.Sprintf("%d", restarts),
				"panic":    lastPanic,
			})
		},
	})
	s.mux = s.routes()
	return s, nil
}

// armOnline attaches the daemon's phase segmentation, open-set, and
// training-reservoir configuration to a session's classifier. Restored
// sessions keep the segmenter and reservoir that came out of their
// checkpoint (re-attaching would drop accumulated state); the open-set
// thresholds are always re-attached because they are deterministic from
// the trained model and never serialized.
func (s *Server) armOnline(o *classify.Online) {
	if s.segCfg != nil && !o.SegmentationEnabled() {
		o.EnableSegmentation(*s.segCfg)
	}
	if os := s.activeOpenSet(); os != nil {
		o.EnableOpenSet(os)
	}
	if s.cfg.TrainReservoir >= 0 && !o.SamplingEnabled() {
		capRows := s.cfg.TrainReservoir
		if capRows == 0 {
			capRows = classify.DefaultTrainReservoir
		}
		o.EnableSampling(capRows)
	}
}

// liveComposition resolves a VM's live class composition for the
// placement service's prediction chain.
func (s *Server) liveComposition(app string) (map[appclass.Class]float64, bool) {
	sess, ok := s.reg.get(app)
	if !ok {
		return nil, false
	}
	sess.mu.Lock()
	view := sess.online.Snapshot()
	sess.mu.Unlock()
	if view.Total == 0 {
		return nil, false
	}
	return view.Composition, true
}

func (s *Server) now() time.Time { return s.cfg.Now() }

// DB returns the application database receiving finalized sessions.
func (s *Server) DB() *appdb.DB { return s.cfg.DB }

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int { return s.reg.len() }

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns nil after
// a graceful shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	srv := &http.Server{Handler: s.mux}
	s.httpSrv = srv
	s.mu.Unlock()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// StartJanitor launches the idle-TTL eviction loop as a supervised
// task: a panic restarts it under backoff, and a sweep that wedges
// (e.g. behind a stuck session lock) misses its heartbeat and degrades
// /readyz instead of silently leaving sessions unevicted.
func (s *Server) StartJanitor() {
	hb := 4 * s.cfg.SweepInterval
	s.sup.Go("janitor", supervise.TaskOptions{Heartbeat: hb}, func(stop <-chan struct{}, t *supervise.Task) {
		tick := time.NewTicker(s.cfg.SweepInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Beat()
				if n := s.EvictIdle(); n > 0 {
					s.cfg.Logf("server: evicted %d idle session(s)", n)
				}
			}
		}
	})
}

// EvictIdle runs one janitor sweep: every session idle longer than
// IdleTTL is finalized into the application database and removed. It
// returns the number of sessions evicted.
func (s *Server) EvictIdle() int {
	deadline := s.now().Add(-s.cfg.IdleTTL)
	if n := s.binStreams.expire(deadline.UnixNano()); n > 0 {
		s.counters.binStreamsExpired.Add(int64(n))
	}
	evicted := 0
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		idle := sess.lastSeen.Before(deadline) && !sess.finalized
		sess.mu.Unlock()
		if !idle {
			continue
		}
		if s.finalize(sess, true) {
			evicted++
			s.counters.evictions.Add(1)
		}
	}
	return evicted
}

// finalize removes sess from the registry and writes its record to the
// application database. It returns false if another finalizer won the
// race, or if the finalize marker could not be journaled. journal
// controls whether a finalize marker is appended to the write-ahead
// journal: live finalizations journal so crash recovery re-finalizes
// the session instead of resurrecting it; the replay path passes false
// because its records are already on disk. The marker is appended
// write-ahead — before the session is marked finalized, removed from
// the registry, or written to the database — mirroring the batch path,
// so a crash anywhere in this sequence replays into a state no newer
// than the journal. A finalize whose marker cannot be journaled does
// not proceed: the session stays live and the janitor retries later.
func (s *Server) finalize(sess *session, journal bool) bool {
	journal = journal && s.cfg.Journal != nil
	if journal && s.degraded.mode.Load() {
		// Degraded durability: finalize memory-only, like ingest. The next
		// checkpoint (forced when degraded mode exits) records the session
		// as gone, bounding how long a recovery could resurrect it.
		journal = false
	}
	if journal {
		// Hold the checkpoint read-lock across the marker append and the
		// state change so a checkpoint sees either both or neither.
		s.ckptMu.RLock()
		defer s.ckptMu.RUnlock()
	}
	sess.mu.Lock()
	if sess.finalized {
		sess.mu.Unlock()
		return false
	}
	if journal {
		if _, err := s.cfg.Journal.AppendFinalize(sess.vm); err != nil {
			s.counters.journalErrors.Add(1)
			if !s.cfg.DegradeOnWALError {
				sess.mu.Unlock()
				s.cfg.Logf("server: journal finalize %s: %v (session kept live)", sess.vm, err)
				return false
			}
			s.enterDegraded(err)
		} else {
			s.counters.journalRecords.Add(1)
		}
	}
	sess.finalized = true
	view := sess.online.Snapshot()
	modelID := sess.model
	trainMetrics, trainRows := sess.online.TrainSamples()
	// Unmap while still holding sess.mu (shard locks are never held
	// around session locks, so the order is safe): an ingest racing this
	// finalization either sees the session gone and builds a fresh one,
	// or waits on sess.mu and then retries against the registry.
	s.reg.remove(sess.vm, sess)
	sess.mu.Unlock()

	if journal {
		s.kickCheckpointer()
	}

	if view.Total == 0 {
		// A session that never classified anything (e.g. its first
		// Observe failed) has no record worth keeping.
		return true
	}
	exec := view.LastAt - view.FirstAt
	if exec < 0 {
		exec = 0
	}
	rec := appdb.Record{
		App:             sess.vm,
		Class:           view.Class,
		Composition:     view.Composition,
		ExecutionTime:   exec,
		Samples:         view.Total,
		Gaps:            view.Gaps,
		GapTime:         view.GapTime,
		Phases:          view.Phases,
		UnknownFraction: view.UnknownFraction,
		Verdict:         view.Verdict,
		ModelID:         modelID,
	}
	if len(trainRows) > 0 {
		rec.TrainMetrics = trainMetrics
		rec.TrainSamples = trainRows
	}
	if view.Verdict == appclass.Unknown {
		s.counters.unknownSessions.Add(1)
	}
	if fp := phase.NewFingerprint(view.Phases); !fp.Empty() {
		rec.Fingerprint = &fp
		// Match against the dictionary as it stood before this run's own
		// record lands, so a run can match an earlier run of itself under
		// a different VM name but never its own fingerprint.
		if m, ok := phase.BestMatch(fp, s.cfg.DB.Fingerprints()); ok && m.Score >= phase.DefaultMatchThreshold {
			rec.MatchedApp = m.App
			rec.MatchScore = m.Score
			s.counters.fingerprintMatches.Add(1)
		} else {
			s.counters.fingerprintMisses.Add(1)
		}
	}
	// Stamp the finalize time so both database engines store identical
	// records and Scan/retention can order by it.
	rec.FinalizedAt = s.now().UnixNano()
	putStart := s.now()
	if err := s.cfg.DB.Put(rec); err != nil {
		s.counters.finalizeErrors.Add(1)
		s.cfg.Logf("server: finalize %s: %v", sess.vm, err)
	} else {
		elapsed := s.now().Sub(putStart).Nanoseconds()
		s.counters.finalizeAppendLastNanos.Store(elapsed)
		s.counters.finalizeAppendNanos.Add(elapsed)
		s.counters.finalizeAppends.Add(1)
	}
	return true
}

// FlushAll finalizes every open session, returning how many were
// flushed.
func (s *Server) FlushAll() int {
	n := 0
	for _, sess := range s.reg.all() {
		if s.finalize(sess, true) {
			n++
			s.counters.flushed.Add(1)
		}
	}
	return n
}

// Shutdown gracefully stops the daemon: background loops halt, the
// HTTP server (if serving) drains in-flight requests within ctx, every
// open session is flushed into the application database, and — when a
// journal is configured — a final checkpoint is written and the journal
// synced, so a clean restart recovers instantly with nothing to replay.
// Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	close(s.stopc)
	srv := s.httpSrv
	s.mu.Unlock()

	var err error
	if serr := s.sup.Stop(ctx); serr != nil {
		// A wedged task cannot be joined; report it and keep draining —
		// abandoning it is exactly what the shutdown timeout is for.
		s.cfg.Logf("server: shutdown: %v", serr)
		err = serr
	}
	s.loops.Wait()
	if srv != nil {
		if herr := srv.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
	}
	if n := s.FlushAll(); n > 0 {
		s.cfg.Logf("server: flushed %d open session(s)", n)
	}
	if s.cfg.Journal != nil {
		// The final checkpoint covers every flush marker above: it has no
		// sessions and points past the last journal record.
		if cerr := s.Checkpoint(); cerr != nil {
			s.cfg.Logf("server: final checkpoint: %v", cerr)
			if err == nil {
				err = cerr
			}
		}
		if serr := s.cfg.Journal.Sync(); serr != nil {
			s.cfg.Logf("server: final journal sync: %v", serr)
			if err == nil {
				err = serr
			}
		}
	}
	return err
}

// phaseBoundaries converts a phase count into a boundary count: the
// first phase of a session is not preceded by a boundary.
func phaseBoundaries(phases int) int {
	if phases <= 0 {
		return 0
	}
	return phases - 1
}

// observe routes one validated snapshot into its VM's session,
// creating the session on first contact. It retries when it races a
// concurrent eviction of the same VM.
func (s *Server) observe(vm string, at time.Duration, values []float64) (string, error) {
	classes, durable, err := s.observeBatch(vm, []metrics.Snapshot{{Time: at, Node: vm, Values: values}}, nil, true)
	if err != nil {
		return "", err
	}
	if err := s.waitJournalDurable(durable); err != nil {
		return "", err
	}
	return string(classes[0]), nil
}

// waitJournalDurable blocks until the journal's group-commit fsync
// covers token (the durability token observeBatch returned); callers
// making several observeBatch calls per request wait once on the
// largest token before acknowledging. An fsync failure follows the
// same policy as a failed append: fatal to the request, unless
// DegradeOnWALError trades durability for liveness.
func (s *Server) waitJournalDurable(token int64) error {
	if token == 0 || s.cfg.Journal == nil {
		return nil
	}
	err := s.cfg.Journal.WaitDurable(token)
	if err == nil {
		return nil
	}
	s.counters.journalErrors.Add(1)
	if s.cfg.DegradeOnWALError {
		s.enterDegraded(err)
		return nil
	}
	s.counters.ingestErrors.Add(1)
	return fmt.Errorf("server: journal fsync: %w", err)
}

// observeBatch routes a VM's whole snapshot group into its session
// under a single lock acquisition — the batched counterpart of observe.
// classes is an optional result buffer (reused when it has capacity);
// the returned slice is owned by the caller. It retries when it races a
// concurrent eviction of the same VM. journal selects write-ahead
// durability: live ingest journals the batch before classifying it (so
// a crash replays it), the recovery path passes false because its
// records come from the journal. The returned token is the batch's
// group-commit durability token: the caller must pass it (or the
// largest token of a multi-batch request) to waitJournalDurable before
// acknowledging; zero means no wait is due.
func (s *Server) observeBatch(vm string, snaps []metrics.Snapshot, classes []appclass.Class, journal bool) ([]appclass.Class, int64, error) {
	if len(snaps) == 0 {
		return classes[:0], 0, nil
	}
	journal = journal && s.cfg.Journal != nil
	probing := false
	if journal && s.degraded.mode.Load() {
		// Degraded durability: ingest is memory-only. At most one batch
		// per DegradedProbeEvery probes the journal to re-arm it; the rest
		// skip it entirely so a dead disk is not hammered per batch.
		if s.durabilityProbeDue() && s.cfg.Journal.Revive() == nil {
			probing = true
		} else {
			journal = false
		}
	}
	var durable int64
	for attempt := 0; attempt < 3; attempt++ {
		sess, created, err := s.reg.getOrCreate(vm, func() (*session, error) {
			am := s.active.Load()
			online, err := classify.NewOnline(am.model.Classifier, s.cfg.Schema)
			if err != nil {
				return nil, err
			}
			s.armOnline(online)
			return &session{vm: vm, online: online, lastSeen: s.now(), model: am.model.ID}, nil
		})
		if err != nil {
			return nil, 0, err
		}
		if created {
			s.cfg.Logf("server: new session for %s", vm)
		}
		if journal {
			// The append + classify pair must be one atomic step from the
			// checkpointer's point of view; see ckptMu.
			s.ckptMu.RLock()
		}
		sess.mu.Lock()
		if sess.finalized {
			sess.mu.Unlock()
			if journal {
				s.ckptMu.RUnlock()
			}
			continue // lost a race with the janitor; re-resolve
		}
		// A session created in the narrow window around a hot swap can
		// still hold the previous model (getOrCreate runs outside the
		// promote quiesce); bind it forward before classifying so no
		// batch is served by a retired model.
		if am := s.active.Load(); sess.model != am.model.ID {
			if rerr := sess.online.Rebind(am.model.Classifier, am.openset); rerr != nil {
				s.counters.rebindErrors.Add(1)
				s.cfg.Logf("server: rebind %s to model %s: %v (session continues on %s)", vm, am.model.ID, rerr, sess.model)
			} else {
				sess.model = am.model.ID
			}
		}
		if journal {
			// Write-ahead: a batch that cannot be journaled is not
			// classified, so the journal is never behind the session state —
			// unless DegradeOnWALError trades that guarantee for liveness,
			// in which case the batch is classified memory-only and the
			// daemon drops into explicit degraded mode. Under group commit
			// only the write happens here; the fsync wait is deferred to
			// the caller's waitJournalDurable so a multi-group request
			// pays one durability wait, not one per VM group.
			if _, token, err := s.cfg.Journal.AppendBatchDeferred(vm, snaps); err != nil {
				s.counters.journalErrors.Add(1)
				if !s.cfg.DegradeOnWALError {
					sess.mu.Unlock()
					s.ckptMu.RUnlock()
					s.counters.ingestErrors.Add(1)
					return nil, 0, fmt.Errorf("server: journal batch for %s: %w", vm, err)
				}
				s.enterDegraded(err)
			} else {
				durable = token
				s.counters.journalRecords.Add(1)
				if probing {
					s.exitDegraded()
				}
			}
		}
		prevUnknown := sess.online.UnknownCount()
		prevPhases := sess.online.PhaseCount()
		out, err := sess.online.ObserveBatch(snaps, classes)
		if err == nil {
			sess.lastSeen = s.now()
		}
		newUnknown := sess.online.UnknownCount() - prevUnknown
		newPhases := phaseBoundaries(sess.online.PhaseCount()) - phaseBoundaries(prevPhases)
		sess.mu.Unlock()
		if newUnknown > 0 {
			s.counters.unknownSnapshots.Add(int64(newUnknown))
		}
		if newPhases > 0 {
			s.counters.phaseBoundaries.Add(int64(newPhases))
		}
		if journal {
			s.ckptMu.RUnlock()
		}
		if err != nil {
			s.counters.ingestErrors.Add(1)
			return nil, 0, err
		}
		s.counters.ingested.Add(int64(len(out)))
		for _, class := range out {
			s.counters.classified(class)
		}
		// Shadow-classify the batch on the candidate model, outside every
		// lock: the candidate sees exactly the traffic the active model
		// served but can only ever produce statistics.
		if se := s.shadow.Load(); se != nil {
			se.observe(snaps, out, newUnknown)
		}
		// During a probation window the displaced model does the same in
		// reverse, feeding the guardrails that can auto-roll the promote
		// back. One atomic load on the hot path, nil outside probation.
		if pb := s.probation.Load(); pb != nil {
			pb.eval.observe(snaps, out, newUnknown)
		}
		return out, durable, nil
	}
	return nil, 0, fmt.Errorf("server: session for %q kept being evicted mid-ingest", vm)
}
