package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/supervise"
)

// activeModel pairs the serving model with its calibrated open-set
// thresholds. The daemon swaps the whole pair atomically (one pointer
// store under the checkpoint quiesce), so no reader ever sees a model
// from one generation with thresholds from another.
type activeModel struct {
	model   *modelreg.Model
	openset *classify.OpenSet
}

// activeClassifier returns the classifier currently serving verdicts.
func (s *Server) activeClassifier() *classify.Classifier {
	return s.active.Load().model.Classifier
}

// activeOpenSet returns the serving open-set thresholds (nil with the
// open-set test disabled).
func (s *Server) activeOpenSet() *classify.OpenSet {
	return s.active.Load().openset
}

// ActiveModelID returns the short compatibility hash of the serving
// model.
func (s *Server) ActiveModelID() string {
	return s.active.Load().model.ID
}

// activeModelHash returns the full hex hash for checkpoint stamping.
func (s *Server) activeModelHash() string {
	return s.active.Load().model.Hash.String()
}

// calibrateFor derives open-set thresholds for a model under the
// daemon's serving params, logging loudly for every class calibration
// had to skip (fewer than two training points → infinite threshold,
// never flags unknown). Returns nil when the open-set test is disabled.
func (s *Server) calibrateFor(m *modelreg.Model) (*classify.OpenSet, error) {
	if m.Params.OpenSetSlack < 0 {
		return nil, nil
	}
	os, err := m.Classifier.CalibrateOpenSet(classify.OpenSetConfig{
		Quantile: m.Params.OpenSetQuantile,
		Slack:    m.Params.OpenSetSlack,
	})
	if err != nil {
		return nil, err
	}
	for cl, cerr := range os.SkippedClasses() {
		s.cfg.Logf("server: model %s: OPEN-SET CALIBRATION SKIPPED class %s: %v — the class will never flag unknown", m.ID, cl, cerr)
	}
	return os, nil
}

// shadowEval measures a candidate model against live traffic: every
// batch the active model classifies is also classified by the
// candidate, on its own scratch, and only the disagreement statistics
// escape — the candidate never touches verdicts, sessions, the journal,
// or the application database. Counters reset when a new candidate is
// installed.
type shadowEval struct {
	model   *modelreg.Model
	openset *classify.OpenSet
	// subset is the candidate's gather indices into the ingest schema.
	subset []int
	// scratch recycles per-goroutine classification buffers.
	scratch sync.Pool

	snaps         atomic.Int64 // snapshots shadow-classified
	disagree      atomic.Int64 // candidate voted differently than active
	candUnknown   atomic.Int64 // candidate open-set unknowns
	activeUnknown atomic.Int64 // active open-set unknowns over the same snapshots
	errors        atomic.Int64 // candidate classification errors
	nanos         atomic.Int64 // candidate classification time

	// perClass is keyed by the ACTIVE model's vote: "of the snapshots
	// active called cpu-intensive, how many did the candidate call
	// something else". Keys are fixed at construction (the active
	// model's class set plus every known class), so reads are lock-free.
	perClass map[appclass.Class]*classPair
}

type classPair struct {
	total    atomic.Int64
	disagree atomic.Int64
}

func newShadowEval(m *modelreg.Model, os *classify.OpenSet, schema *metrics.Schema) (*shadowEval, error) {
	subset, err := m.Classifier.GatherIndices(schema)
	if err != nil {
		return nil, fmt.Errorf("server: candidate %s does not fit the ingest schema: %w", m.ID, err)
	}
	se := &shadowEval{
		model:    m,
		openset:  os,
		subset:   subset,
		perClass: make(map[appclass.Class]*classPair),
	}
	se.scratch.New = func() any { return new(classify.Scratch) }
	for _, cl := range appclass.All() {
		se.perClass[cl] = new(classPair)
	}
	se.perClass[appclass.Unknown] = new(classPair)
	return se, nil
}

// observe shadow-classifies one batch the active model just served.
// activeClasses are the active votes (1:1 with snaps) and
// activeUnknownDelta how many of the batch's snapshots the active model
// counted unknown. Called outside every session and checkpoint lock.
func (se *shadowEval) observe(snaps []metrics.Snapshot, activeClasses []appclass.Class, activeUnknownDelta int) {
	t0 := time.Now()
	sc := se.scratch.Get().(*classify.Scratch)
	for i := range snaps {
		v, err := se.model.Classifier.ClassifySnapshotOpenSet(se.subset, snaps[i].Values, se.openset, sc)
		if err != nil {
			se.errors.Add(1)
			continue
		}
		se.snaps.Add(1)
		if v.Unknown {
			se.candUnknown.Add(1)
		}
		av := activeClasses[i]
		pair := se.perClass[av]
		if pair != nil {
			pair.total.Add(1)
		}
		if v.Class != av {
			se.disagree.Add(1)
			if pair != nil {
				pair.disagree.Add(1)
			}
		}
	}
	se.scratch.Put(sc)
	se.activeUnknown.Add(int64(activeUnknownDelta))
	se.nanos.Add(int64(time.Since(t0)))
}

// shadowView is the JSON/metrics snapshot of a shadow evaluation.
type shadowView struct {
	Candidate string `json:"candidate"`
	Snapshots int64  `json:"snapshots"`
	Disagree  int64  `json:"disagreements"`
	// DisagreementRate is Disagree / Snapshots.
	DisagreementRate float64 `json:"disagreement_rate"`
	// PerClass maps the active model's vote to how often the candidate
	// disagreed with it (classes with zero shadowed snapshots omitted).
	PerClass map[string]classPairView `json:"per_class,omitempty"`
	// UnknownRateActive/Candidate are open-set unknown fractions over
	// the shadowed snapshots; UnknownRateDelta is candidate - active.
	UnknownRateActive    float64 `json:"unknown_rate_active"`
	UnknownRateCandidate float64 `json:"unknown_rate_candidate"`
	UnknownRateDelta     float64 `json:"unknown_rate_delta"`
	// MeanLatencyNanos is the candidate's mean per-snapshot
	// classification cost.
	MeanLatencyNanos int64 `json:"mean_latency_ns"`
	Errors           int64 `json:"errors"`
}

type classPairView struct {
	Snapshots int64 `json:"snapshots"`
	Disagree  int64 `json:"disagreements"`
}

func (se *shadowEval) view() shadowView {
	v := shadowView{
		Candidate: se.model.ID,
		Snapshots: se.snaps.Load(),
		Disagree:  se.disagree.Load(),
		Errors:    se.errors.Load(),
		PerClass:  make(map[string]classPairView),
	}
	if v.Snapshots > 0 {
		v.DisagreementRate = float64(v.Disagree) / float64(v.Snapshots)
		v.UnknownRateActive = float64(se.activeUnknown.Load()) / float64(v.Snapshots)
		v.UnknownRateCandidate = float64(se.candUnknown.Load()) / float64(v.Snapshots)
		v.UnknownRateDelta = v.UnknownRateCandidate - v.UnknownRateActive
		v.MeanLatencyNanos = se.nanos.Load() / v.Snapshots
	}
	for cl, pair := range se.perClass {
		if n := pair.total.Load(); n > 0 {
			v.PerClass[string(cl)] = classPairView{Snapshots: n, Disagree: pair.disagree.Load()}
		}
	}
	return v
}

// Promote errors the HTTP layer maps onto status codes.
var (
	errModelNotFound = errors.New("model not found")
	errModelConflict = errors.New("model conflict")
)

// Promote atomically hot-swaps the serving model to the registered
// model id. The sequence is: calibrate the new model's open-set
// thresholds outside any lock, then — under the checkpoint-quiesce
// write lock, with no ingest in flight — store the new active pair,
// rotate the journal onto a segment stamped with the new hash, and
// rebind every live session to the new classifier (counts, history,
// drift, phases, and training reservoirs carry over; subsequent
// snapshots classify under the new model). The pause is bounded by the
// same quiesce a checkpoint takes; everything slow happens outside it.
// It returns the swap pause.
//
// With Config.ProbationWindow > 0 the promoted model enters probation:
// the displaced model shadow-classifies in reverse for the window, and
// a breach (see probation.go) rolls the swap back automatically.
func (s *Server) Promote(id string) (time.Duration, error) {
	return s.promote(id, false)
}

// promote is Promote plus the rollback flag: a rollback re-promotes the
// probation guard and must not arm a fresh probation around it (the
// guard already earned its trust serving before the swap).
func (s *Server) promote(id string, rollback bool) (time.Duration, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m, state, ok := s.models.Get(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", errModelNotFound, id)
	}
	if state == modelreg.StateActive {
		return 0, fmt.Errorf("%w: model %s is already active", errModelConflict, id)
	}
	cur := s.active.Load()
	if err := expertMetricsMatch(cur.model.Classifier, m.Classifier); err != nil {
		return 0, fmt.Errorf("%w: %v", errModelConflict, err)
	}
	// Everything expensive — calibration walks the whole training set —
	// happens before the quiesce.
	os, err := s.calibrateFor(m)
	if err != nil {
		return 0, fmt.Errorf("server: promote %s: %w", id, err)
	}

	rebindErrors := 0
	t0 := time.Now()
	s.ckptMu.Lock()
	s.active.Store(&activeModel{model: m, openset: os})
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.SetModelHash(m.Hash); err != nil {
			// The swap proceeds — sessions must not straddle two models —
			// but the journal keeps the old stamp until its next segment;
			// recovery's force path can still read it. Loud, not fatal.
			s.cfg.Logf("server: promote %s: restamp journal: %v", id, err)
		}
	}
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		if !sess.finalized {
			if err := sess.online.Rebind(m.Classifier, os); err != nil {
				rebindErrors++
				s.cfg.Logf("server: promote %s: rebind %s: %v (session continues on the old model)", id, sess.vm, err)
			} else {
				sess.model = m.ID
			}
		}
		sess.mu.Unlock()
	}
	s.ckptMu.Unlock()
	pause := time.Since(t0)

	if rebindErrors > 0 {
		s.counters.rebindErrors.Add(int64(rebindErrors))
	}
	if err := s.models.SetActive(id); err != nil {
		// Cannot happen: the model was fetched from the registry above and
		// promotes are serialized by swapMu.
		s.cfg.Logf("server: promote %s: registry: %v", id, err)
	}
	// Any running shadow evaluation measured disagreement against the
	// OLD active model; its numbers are meaningless now.
	if se := s.shadow.Swap(nil); se != nil && se.model.ID != id {
		s.models.ClearCandidate()
		s.cfg.Logf("server: promote %s: shadow evaluation of %s reset (baseline changed)", id, se.model.ID)
	}
	// Any swap invalidates a running probation: its guard measured the
	// baseline that just changed. A forward promote then arms a new
	// window around the model it installed.
	s.probation.Store(nil)
	if rollback {
		s.cfg.Logf("server: rolled back to model %s", id)
	} else if s.cfg.ProbationWindow > 0 {
		s.startProbation(cur, m)
	}
	s.counters.modelPromotes.Add(1)
	s.counters.swapLastNanos.Store(int64(pause))
	s.cfg.Logf("server: promoted model %s (hash %s) in %s; %d session(s) rebound",
		id, m.Hash.String(), pause, len(s.reg.all()))
	// Checkpoint immediately so the newest checkpoint carries the new
	// hash: a crash right after the swap recovers under the new model
	// instead of being refused for a stale pre-swap checkpoint.
	if s.cfg.Journal != nil {
		if err := s.Checkpoint(); err != nil {
			s.cfg.Logf("server: post-promote checkpoint: %v", err)
		}
	}
	return pause, nil
}

// expertMetricsMatch verifies two classifiers gather the identical
// expert-metric list — the invariant Rebind needs (per-metric drift
// accumulators and training reservoirs carry across the swap).
func expertMetricsMatch(a, b *classify.Classifier) error {
	am, bm := a.Config().ExpertMetrics, b.Config().ExpertMetrics
	if len(am) != len(bm) {
		return fmt.Errorf("expert metrics differ: active has %d, candidate %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			return fmt.Errorf("expert metric %d differs: active %q, candidate %q", i, am[i], bm[i])
		}
	}
	return nil
}

// installCandidate registers m (if new) and starts shadow-evaluating
// it. Caller holds swapMu.
func (s *Server) installCandidate(m *modelreg.Model) error {
	cur := s.active.Load()
	if m.Hash == cur.model.Hash {
		return fmt.Errorf("%w: model %s is identical to the active model", errModelConflict, m.ID)
	}
	if err := expertMetricsMatch(cur.model.Classifier, m.Classifier); err != nil {
		return fmt.Errorf("%w: %v", errModelConflict, err)
	}
	os, err := s.calibrateFor(m)
	if err != nil {
		return err
	}
	se, err := newShadowEval(m, os, s.cfg.Schema)
	if err != nil {
		return err
	}
	if _, _, ok := s.models.Get(m.ID); !ok {
		if err := s.models.Add(m); err != nil {
			return err
		}
	}
	if err := s.models.SetCandidate(m.ID); err != nil {
		return err
	}
	s.shadow.Store(se)
	return nil
}

// modelJSON is one row of GET /v1/models.
type modelJSON struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	State    string `json:"state"`
	Source   string `json:"source"`
	LoadedAt string `json:"loaded_at"`
	// Params echo the serving knobs the hash covers.
	Params modelreg.Params `json:"params"`
}

func (s *Server) modelJSON(e modelreg.Entry) modelJSON {
	return modelJSON{
		ID:       e.Model.ID,
		Hash:     e.Model.Hash.String(),
		State:    string(e.State),
		Source:   e.Model.Source,
		LoadedAt: time.Unix(0, e.Model.LoadedAtUnixNS).UTC().Format(time.RFC3339),
		Params:   e.Model.Params,
	}
}

// handleModels serves GET /v1/models: the registry plus the live shadow
// report.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Active    string         `json:"active"`
		Models    []modelJSON    `json:"models"`
		Shadow    *shadowView    `json:"shadow,omitempty"`
		Probation *probationView `json:"probation,omitempty"`
		SwapPause float64        `json:"last_swap_pause_s,omitempty"`
	}{Active: s.ActiveModelID(), Probation: s.probationView()}
	for _, e := range s.models.List() {
		out.Models = append(out.Models, s.modelJSON(e))
	}
	if se := s.shadow.Load(); se != nil {
		v := se.view()
		out.Shadow = &v
	}
	if ns := s.counters.swapLastNanos.Load(); ns > 0 {
		out.SwapPause = time.Duration(ns).Seconds()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleModelLoad serves POST /v1/models: load a candidate artifact
// from disk and start shadow-evaluating it against live traffic.
func (s *Server) handleModelLoad(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed model-load body: %v", err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "model load needs a path")
		return
	}
	path := req.Path
	if dir := s.cfg.ModelDir; dir != "" {
		// Artifacts are confined to ModelDir: the path is taken relative
		// to it and must not escape (the daemon's API would otherwise read
		// arbitrary files on operator request).
		if filepath.IsAbs(path) || !filepath.IsLocal(path) {
			writeError(w, http.StatusBadRequest, "model path %q escapes the model directory", req.Path)
			return
		}
		path = filepath.Join(dir, path)
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m, err := modelreg.LoadFile(path, s.active.Load().model.Params, s.now().UnixNano())
	if err != nil {
		s.counters.modelLoadErrors.Add(1)
		writeError(w, http.StatusBadRequest, "load model: %v", err)
		return
	}
	if err := s.installCandidate(m); err != nil {
		s.counters.modelLoadErrors.Add(1)
		if errors.Is(err, errModelConflict) {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "install candidate: %v", err)
		return
	}
	s.counters.modelLoads.Add(1)
	s.cfg.Logf("server: loaded candidate model %s (hash %s) from %s; shadow evaluation started", m.ID, m.Hash.String(), path)
	writeJSON(w, http.StatusCreated, s.modelJSON(modelreg.Entry{Model: m, State: modelreg.StateCandidate}))
}

// handleModelPromote serves POST /v1/models/{id}/promote.
func (s *Server) handleModelPromote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pause, err := s.Promote(id)
	switch {
	case errors.Is(err, errModelNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, errModelConflict):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "promote %s: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"active":       id,
		"swap_pause_s": pause.Seconds(),
	})
}

// handleModelDelete serves DELETE /v1/models/{id}: discard a loaded,
// retired, or candidate model (discarding the candidate stops its
// shadow evaluation). The active model cannot be removed.
func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	_, state, ok := s.models.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no model %s", id)
		return
	}
	if pb := s.probation.Load(); pb != nil && pb.prevID == id {
		// The guard is the rollback target; removing it would leave a
		// probation that cannot act on a breach.
		writeError(w, http.StatusConflict, "model %s guards the probation of %s; retry after the window closes", id, pb.newID)
		return
	}
	if state == modelreg.StateCandidate {
		s.shadow.Store(nil)
		s.models.ClearCandidate()
	}
	if err := s.models.Remove(id); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.counters.modelDiscards.Add(1)
	s.cfg.Logf("server: discarded model %s", id)
	writeJSON(w, http.StatusOK, map[string]any{"removed": id})
}

// StartRetrainer launches the online-retraining loop: every
// RetrainEvery it refits a classifier from the labeled finalized
// sessions in the application database and installs the result as the
// shadow candidate (never displacing an operator-loaded candidate).
// No-op unless Config.RetrainEvery > 0.
func (s *Server) StartRetrainer() {
	if s.cfg.RetrainEvery <= 0 {
		return
	}
	s.sup.Go("retrainer", supervise.TaskOptions{Heartbeat: 4 * s.cfg.RetrainEvery}, func(stop <-chan struct{}, t *supervise.Task) {
		tick := time.NewTicker(s.cfg.RetrainEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Beat()
				s.retrainOnce()
			}
		}
	})
}

// retrainOnce runs one retraining pass. Split out for tests.
func (s *Server) retrainOnce() {
	cl, stats, err := modelreg.Retrain(s.cfg.DB, modelreg.RetrainConfig{
		MinRowsPerClass: s.cfg.RetrainMinRows,
	})
	if err != nil {
		// Not enough labeled data yet is the steady state early on; only
		// count it, log at low volume.
		s.counters.retrainErrors.Add(1)
		s.cfg.Logf("server: retrain: %v", err)
		return
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m, err := modelreg.NewModel(cl, s.active.Load().model.Params, "retrain", s.now().UnixNano())
	if err != nil {
		s.counters.retrainErrors.Add(1)
		s.cfg.Logf("server: retrain: %v", err)
		return
	}
	s.counters.retrainRuns.Add(1)
	if m.Hash == s.active.Load().model.Hash {
		s.cfg.Logf("server: retrain: refit matches the active model (%s); nothing to evaluate", m.ID)
		return
	}
	if _, state, ok := s.models.Get(m.ID); ok && state == modelreg.StateCandidate {
		s.cfg.Logf("server: retrain: refit matches the current candidate (%s)", m.ID)
		return
	}
	if cand := s.models.Candidate(); cand != nil && strings.HasPrefix(cand.Source, "file:") {
		// An operator staged this candidate deliberately; a background
		// refit must not displace it.
		s.cfg.Logf("server: retrain: produced model %s but candidate slot holds operator-loaded %s; keeping it on file", m.ID, cand.ID)
		if s.cfg.RetrainOut != "" {
			if err := modelreg.SaveFile(s.cfg.RetrainOut, cl); err != nil {
				s.cfg.Logf("server: retrain: save artifact: %v", err)
			}
		}
		return
	}
	if s.cfg.RetrainOut != "" {
		if err := modelreg.SaveFile(s.cfg.RetrainOut, cl); err != nil {
			s.counters.retrainErrors.Add(1)
			s.cfg.Logf("server: retrain: save artifact %s: %v", s.cfg.RetrainOut, err)
		}
	}
	if err := s.installCandidate(m); err != nil {
		s.counters.retrainErrors.Add(1)
		s.cfg.Logf("server: retrain: install candidate %s: %v", m.ID, err)
		return
	}
	s.cfg.Logf("server: retrain: candidate %s installed from %d record(s), %d class(es); shadow evaluation started",
		m.ID, stats.Records, len(stats.RowsPerClass))
}

// modelGauges is the model-lifecycle view rendered in /metricsz.
type modelGauges struct {
	activeID      string
	swapLastNanos int64
	shadow        *shadowView
	probation     *probationView
}
