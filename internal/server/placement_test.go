package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/sched"
)

func threeHostPlacer(t *testing.T) *placement.Service {
	t.Helper()
	svc, err := placement.New(placement.Config{Hosts: []placement.HostSpec{
		{Name: "vm1", Slots: 3}, {Name: "vm2", Slots: 3}, {Name: "vm3", Slots: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestPlacementEndpointsUnconfigured pins the 503 answer on every
// placement route when the daemon runs without -hosts.
func TestPlacementEndpointsUnconfigured(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct{ method, path string }{
		{"POST", "/v1/placements"},
		{"GET", "/v1/placements"},
		{"GET", "/v1/placements/advice"},
		{"DELETE", "/v1/placements/p-1"},
		{"GET", "/v1/hosts"},
		{"GET", "/v1/hosts/vm1"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(`{"app":"x"}`))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d without placement service, want 503", tc.method, tc.path, w.Code)
		}
	}
}

func TestPlacementEndpointStatusCodes(t *testing.T) {
	s := newTestServer(t, Config{Placement: threeHostPlacer(t)})
	h := s.Handler()
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"place happy path", "POST", "/v1/placements", `{"app":"newcomer"}`, 200},
		{"place with composition", "POST", "/v1/placements",
			`{"app":"told","composition":{"cpu":0.7,"io":0.3}}`, 200},
		{"malformed body", "POST", "/v1/placements", "{not json", 400},
		{"missing app", "POST", "/v1/placements", `{}`, 400},
		{"unknown class in composition", "POST", "/v1/placements",
			`{"app":"x","composition":{"bogus":1}}`, 400},
		{"fraction out of range", "POST", "/v1/placements",
			`{"app":"x","composition":{"cpu":2}}`, 400},
		{"hosts list", "GET", "/v1/hosts", "", 200},
		{"host detail", "GET", "/v1/hosts/vm1", "", 200},
		{"unknown host", "GET", "/v1/hosts/nope", "", 404},
		{"placements list", "GET", "/v1/placements", "", 200},
		{"advice", "GET", "/v1/placements/advice", "", 200},
		{"release unknown id", "DELETE", "/v1/placements/p-999", "", 404},
		{"method not allowed on hosts", "POST", "/v1/hosts", "", 405},
		{"method not allowed on release", "POST", "/v1/placements/p-1", "", 405},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Errorf("%s %s = %d, want %d (body %s)", tc.method, tc.path, w.Code, tc.want, w.Body.String())
			}
		})
	}
}

func TestPlacementFullInventoryConflicts(t *testing.T) {
	svc, err := placement.New(placement.Config{Hosts: []placement.HostSpec{{Name: "only", Slots: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Placement: svc})
	w := postJSON(t, s.Handler(), "/v1/placements", map[string]any{"app": "first"})
	if w.Code != 200 {
		t.Fatalf("first placement = %d: %s", w.Code, w.Body.String())
	}
	var d struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, s.Handler(), "/v1/placements", map[string]any{"app": "second"}); w.Code != http.StatusConflict {
		t.Errorf("placement on full inventory = %d, want 409", w.Code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/v1/placements/"+d.ID, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("release = %d: %s", rec.Code, rec.Body.String())
	}
	if w := postJSON(t, s.Handler(), "/v1/placements", map[string]any{"app": "second"}); w.Code != 200 {
		t.Errorf("placement after release = %d, want 200", w.Code)
	}
}

// TestPlacementUsesLiveComposition verifies the prediction chain's first
// link: an application currently streaming snapshots is placed by its
// live classification, not the prior.
func TestPlacementUsesLiveComposition(t *testing.T) {
	s := newTestServer(t, Config{Placement: threeHostPlacer(t)})
	trace := profiledTrace(t, "PostMark")
	var snaps []any
	for i := 0; i < 10 && i < trace.Len(); i++ {
		sn := trace.At(i)
		snaps = append(snaps, map[string]any{"vm": "live-vm", "time_s": sn.Time.Seconds(), "values": sn.Values})
	}
	if w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": snaps}); w.Code != 200 {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
	}
	w := postJSON(t, s.Handler(), "/v1/placements", map[string]any{"app": "live-vm"})
	if w.Code != 200 {
		t.Fatalf("placement = %d: %s", w.Code, w.Body.String())
	}
	var d struct {
		Source string             `json:"source"`
		Class  string             `json:"class"`
		Comp   map[string]float64 `json:"composition"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Source != "live" {
		t.Errorf("source = %q, want live", d.Source)
	}
	sess, ok := s.reg.get("live-vm")
	if !ok {
		t.Fatal("live session vanished")
	}
	sess.mu.Lock()
	view := sess.online.Snapshot()
	sess.mu.Unlock()
	if d.Class != string(view.Class) {
		t.Errorf("placement class %q, live session class %q", d.Class, view.Class)
	}
}

// TestPlacementMetricsz checks the placement counters and gauges reach
// /metricsz.
func TestPlacementMetricsz(t *testing.T) {
	s := newTestServer(t, Config{Placement: threeHostPlacer(t)})
	w := postJSON(t, s.Handler(), "/v1/placements", map[string]any{"app": "counted"})
	if w.Code != 200 {
		t.Fatalf("placement = %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"appclassd_placements_total 1",
		"appclassd_placement_errors_total 0",
		"appclassd_releases_total 0",
		"appclassd_hosts 3",
		"appclassd_slots 9",
		"appclassd_placements_active 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}

// TestPlacementBeatsRoundRobinAfterReplay is the live analogue of the
// Figure 4 / Table 4 check, end to end: three labeled traces (one per
// paper workload class S/P/N) are replayed through the daemon and
// finalized into the application database; the same workload mix —
// three instances of each application, arriving interleaved — is then
// placed through POST /v1/placements. The class-aware assignments must
// mix classes on every host and, when simulated on the paper's testbed,
// beat a round-robin baseline on both system throughput and makespan.
func TestPlacementBeatsRoundRobinAfterReplay(t *testing.T) {
	// The placement service consults the same application database the
	// daemon finalizes sessions into — the learning loop closed.
	db := appdb.New()
	svc, err := placement.New(placement.Config{
		Hosts: []placement.HostSpec{
			{Name: "vm1", Slots: 3}, {Name: "vm2", Slots: 3}, {Name: "vm3", Slots: 3},
		},
		History: db,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Placement: svc, DB: db})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Replay one labeled run of each class through the daemon and
	// finish it into the database — the learning half of the loop.
	classApps := []struct {
		app  string
		kind sched.Kind
		want appclass.Class
	}{
		{"SPECseis96_C", sched.KindS, appclass.CPU},
		{"PostMark", sched.KindP, appclass.IO},
		{"NetPIPE", sched.KindN, appclass.Net},
	}
	for _, ca := range classApps {
		trace := profiledTrace(t, ca.app)
		const batchSize = 50
		for start := 0; start < trace.Len(); start += batchSize {
			end := start + batchSize
			if end > trace.Len() {
				end = trace.Len()
			}
			var snaps []any
			for i := start; i < end; i++ {
				sn := trace.At(i)
				snaps = append(snaps, map[string]any{"vm": ca.app, "time_s": sn.Time.Seconds(), "values": sn.Values})
			}
			b, _ := json.Marshal(map[string]any{"snapshots": snaps})
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("ingest %s batch at %d: status %d", ca.app, start, resp.StatusCode)
			}
			resp.Body.Close()
		}
		resp, err := http.Post(ts.URL+"/v1/vms/"+ca.app+"/finish", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var fin finishResponse
		if err := json.NewDecoder(resp.Body).Decode(&fin); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fin.Class != string(ca.want) {
			t.Fatalf("replayed %s classified %q, want %q", ca.app, fin.Class, ca.want)
		}
	}

	// The placement half: three instances of each application arrive
	// interleaved (S, P, N, S, P, N, ...). Round-robin would stack each
	// class on one host; the class-aware service must mix them.
	hostIdx := map[string]int{"vm1": 0, "vm2": 1, "vm3": 2}
	var aware sched.Schedule
	var rr sched.Schedule
	awareFill := [3]int{}
	rrFill := [3]int{}
	arrival := 0
	for round := 0; round < 3; round++ {
		for _, ca := range classApps {
			resp, err := http.Post(ts.URL+"/v1/placements", "application/json",
				strings.NewReader(fmt.Sprintf(`{"app":%q}`, ca.app)))
			if err != nil {
				t.Fatal(err)
			}
			var d struct {
				Host   string `json:"host"`
				Source string `json:"source"`
				Class  string `json:"class"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("placement %s: status %d", ca.app, resp.StatusCode)
			}
			if d.Source != "history" {
				t.Errorf("placement %s from %q, want history (session finished)", ca.app, d.Source)
			}
			if d.Class != string(ca.want) {
				t.Errorf("placement %s predicted class %q, want %q", ca.app, d.Class, ca.want)
			}
			hi, ok := hostIdx[d.Host]
			if !ok {
				t.Fatalf("placement %s on unknown host %q", ca.app, d.Host)
			}
			aware[hi][awareFill[hi]] = ca.kind
			awareFill[hi]++
			ri := arrival % 3
			rr[ri][rrFill[ri]] = ca.kind
			rrFill[ri]++
			arrival++
		}
	}
	for i, n := range awareFill {
		if n != 3 {
			t.Fatalf("host vm%d received %d placements, want 3", i+1, n)
		}
	}
	// Class-aware placement of this arrival order must be the all-mixed
	// SPN schedule; round-robin stacks one class per host.
	if got := aware.Canonical(); got != sched.SPN() {
		t.Fatalf("class-aware assignment = %s, want %s", got, sched.SPN())
	}
	if got := rr.Canonical(); got == sched.SPN() {
		t.Fatal("round-robin baseline unexpectedly produced the mixed schedule")
	}

	// Simulate both on the paper's testbed: the class-aware policy must
	// win on throughput and finish the whole batch sooner.
	awareRes, err := sched.Run(aware.Canonical(), sched.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rrRes, err := sched.Run(rr.Canonical(), sched.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if awareRes.SystemThroughput <= rrRes.SystemThroughput {
		t.Errorf("class-aware throughput %.1f <= round-robin %.1f",
			awareRes.SystemThroughput, rrRes.SystemThroughput)
	}
	if mk, rm := makespan(awareRes), makespan(rrRes); mk > rm {
		t.Errorf("class-aware makespan %v > round-robin %v", mk, rm)
	}
	t.Logf("class-aware %s: throughput %.1f jobs/day, makespan %v",
		aware.Canonical(), awareRes.SystemThroughput, makespan(awareRes))
	t.Logf("round-robin %s: throughput %.1f jobs/day, makespan %v",
		rr.Canonical(), rrRes.SystemThroughput, makespan(rrRes))
}

func makespan(r *sched.Result) time.Duration {
	var m time.Duration
	for _, d := range r.Elapsed {
		if d > m {
			m = d
		}
	}
	return m
}

// TestConcurrentPlacementsVsIngest hammers placements, releases, host
// queries, and snapshot ingest from many goroutines at once; run under
// -race this exercises the placement service lock against the session
// registry and the live-composition wiring.
func TestConcurrentPlacementsVsIngest(t *testing.T) {
	svc, err := placement.New(placement.Config{Hosts: []placement.HostSpec{
		{Name: "h1", Slots: 100}, {Name: "h2", Slots: 100}, {Name: "h3", Slots: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Placement: svc, Shards: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		goroutines = 30
		perG       = 10
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vm := fmt.Sprintf("vm-%d", g%6)
			for i := 0; i < perG; i++ {
				switch g % 3 {
				case 0: // ingest snapshots (feeds live predictions)
					b, _ := json.Marshal(map[string]any{"snapshots": []any{map[string]any{
						"vm": vm, "time_s": float64(g*perG + i),
						"values": make([]float64, metrics.DefaultSchema().Len()),
					}}})
					resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(b))
					if err != nil {
						errc <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errc <- fmt.Errorf("ingest %s: %d", vm, resp.StatusCode)
						return
					}
				case 1: // place, then release
					resp, err := http.Post(ts.URL+"/v1/placements", "application/json",
						strings.NewReader(fmt.Sprintf(`{"app":%q}`, vm)))
					if err != nil {
						errc <- err
						return
					}
					var d struct {
						ID string `json:"id"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
						errc <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errc <- fmt.Errorf("place %s: %d", vm, resp.StatusCode)
						return
					}
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/placements/"+d.ID, nil)
					del, err := http.DefaultClient.Do(req)
					if err != nil {
						errc <- err
						return
					}
					del.Body.Close()
					if del.StatusCode != 200 {
						errc <- fmt.Errorf("release %s: %d", d.ID, del.StatusCode)
						return
					}
				default: // read inventory and advice
					for _, path := range []string{"/v1/hosts", "/v1/placements/advice"} {
						resp, err := http.Get(ts.URL + path)
						if err != nil {
							errc <- err
							return
						}
						resp.Body.Close()
						if resp.StatusCode != 200 {
							errc <- fmt.Errorf("%s: %d", path, resp.StatusCode)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Every placement was released: the inventory must be empty again.
	if st := svc.Stat(); st.Placements != 0 {
		t.Errorf("%d placements still active after release storm", st.Placements)
	}
	placed := s.counters.placements.Load()
	released := s.counters.releases.Load()
	if placed != released || placed == 0 {
		t.Errorf("placements counter %d, releases %d; want equal and nonzero", placed, released)
	}
}
