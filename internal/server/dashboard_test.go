package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/appstore"
)

// seedRuns puts n finalized records into the server's database, newest
// last, cycling apps and classes so filters have something to select.
func seedRuns(t *testing.T, db *appdb.DB, n int) {
	t.Helper()
	classes := appclass.All()
	for i := 0; i < n; i++ {
		c := classes[i%len(classes)]
		rec := appdb.Record{
			App:           fmt.Sprintf("app-%d", i%3),
			Class:         c,
			Composition:   map[appclass.Class]float64{c: 1},
			ExecutionTime: time.Duration(i+1) * time.Second,
			Samples:       i + 1,
			FinalizedAt:   int64(1_700_000_000+i) * int64(time.Second),
			Verdict:       c,
			ModelID:       "cafe0123beef",
		}
		if err := db.Put(rec); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}
}

func getRuns(t *testing.T, h http.Handler, query string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/runs"+query, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET /v1/runs%s: bad JSON: %v\n%s", query, err, w.Body.String())
	}
	return w.Code, body
}

func runApps(body map[string]any) []string {
	var apps []string
	runs, _ := body["runs"].([]any)
	for _, r := range runs {
		row := r.(map[string]any)
		apps = append(apps, row["app"].(string))
	}
	return apps
}

func TestRunsEndpointPagination(t *testing.T) {
	s := newTestServer(t, Config{})
	seedRuns(t, s.DB(), 12)
	h := s.Handler()

	// First page: newest first.
	code, body := getRuns(t, h, "?limit=5")
	if code != 200 {
		t.Fatalf("page 1 status = %d", code)
	}
	if n := body["count"].(float64); n != 5 {
		t.Fatalf("page 1 count = %v, want 5", n)
	}
	first := body["runs"].([]any)[0].(map[string]any)
	if got := first["samples"].(float64); got != 12 {
		t.Fatalf("newest record samples = %v, want 12", got)
	}
	cursor := body["next_cursor"].(float64)
	if cursor == 0 {
		t.Fatal("page 1 next_cursor = 0, want resumable cursor")
	}

	// Walk the remaining pages; 12 records at limit 5 is 5+5+2.
	total := 5
	for cursor != 0 {
		code, body = getRuns(t, h, fmt.Sprintf("?limit=5&cursor=%d", uint64(cursor)))
		if code != 200 {
			t.Fatalf("page status = %d", code)
		}
		total += int(body["count"].(float64))
		cursor = body["next_cursor"].(float64)
	}
	if total != 12 {
		t.Fatalf("paginated total = %d, want 12", total)
	}
}

func TestRunsEndpointFilters(t *testing.T) {
	s := newTestServer(t, Config{})
	seedRuns(t, s.DB(), 10)
	h := s.Handler()

	code, body := getRuns(t, h, "?app=app-1")
	if code != 200 {
		t.Fatalf("app filter status = %d", code)
	}
	for _, app := range runApps(body) {
		if app != "app-1" {
			t.Fatalf("app filter leaked %q", app)
		}
	}
	if len(runApps(body)) == 0 {
		t.Fatal("app filter returned nothing")
	}

	code, body = getRuns(t, h, "?class=cpu")
	if code != 200 {
		t.Fatalf("class filter status = %d", code)
	}
	for _, r := range body["runs"].([]any) {
		if cls := r.(map[string]any)["class"].(string); cls != "cpu" {
			t.Fatalf("class filter leaked %q", cls)
		}
	}

	// Time-window filter: seeds finalize at 1_700_000_000+i seconds.
	code, body = getRuns(t, h, "?since=1700000008")
	if code != 200 {
		t.Fatalf("since filter status = %d", code)
	}
	if n := body["count"].(float64); n != 2 {
		t.Fatalf("since filter count = %v, want 2", n)
	}

	for _, q := range []string{
		"?class=bogus", "?verdict=bogus", "?since=not-a-time",
		"?until=not-a-time", "?cursor=-1", "?limit=0", "?limit=nope",
	} {
		if code, _ := getRuns(t, h, q); code != 400 {
			t.Errorf("GET /v1/runs%s status = %d, want 400", q, code)
		}
	}

	// "unknown" is not a trainable class but is a legal verdict filter.
	if code, _ := getRuns(t, h, "?verdict=unknown"); code != 200 {
		t.Errorf("verdict=unknown status = %d, want 200", code)
	}
}

func TestStatusEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	seedRuns(t, s.DB(), 3)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("GET /v1/status = %d", w.Code)
	}
	var st map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if st["db_records"].(float64) != 3 {
		t.Fatalf("db_records = %v, want 3", st["db_records"])
	}
	if st["db_apps"].(float64) != 3 {
		t.Fatalf("db_apps = %v, want 3", st["db_apps"])
	}
	if st["durability"].(string) != "none" {
		t.Fatalf("durability = %v, want none", st["durability"])
	}
	if st["breaker_state"].(float64) != -1 {
		t.Fatalf("breaker_state = %v, want -1 (push-only)", st["breaker_state"])
	}
	if _, ok := st["store"]; ok {
		t.Fatal("status reported store state for a memory-backed DB")
	}
}

func TestStatusEndpointStoreBacked(t *testing.T) {
	db, err := appdb.Open(t.TempDir()+"/store", appstore.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	s := newTestServer(t, Config{DB: db})
	seedRuns(t, db, 4)

	req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	var st map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	store, ok := st["store"].(map[string]any)
	if !ok {
		t.Fatalf("status missing store state: %s", w.Body.String())
	}
	if store["live_records"].(float64) != 4 {
		t.Fatalf("store live_records = %v, want 4", store["live_records"])
	}
	if store["segments"].(float64) < 1 {
		t.Fatalf("store segments = %v, want >= 1", store["segments"])
	}
}

func TestDashboardAssetsGated(t *testing.T) {
	// Off by default: the asset mount must not exist.
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/dashboard/", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 404 {
		t.Fatalf("dashboard disabled: GET /dashboard/ = %d, want 404", w.Code)
	}

	s2 := newTestServer(t, Config{Dashboard: true})
	h := s2.Handler()
	// (index.html itself 301s to ./ per http.FileServer convention.)
	for _, path := range []string{"/dashboard/", "/dashboard/app.js", "/dashboard/style.css"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, w.Code)
		}
		if w.Body.Len() == 0 {
			t.Errorf("GET %s returned empty body", path)
		}
	}

	// The index must reference its script and the sessions table the
	// smoke test greps for.
	req = httptest.NewRequest(http.MethodGet, "/dashboard/", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	page := w.Body.String()
	for _, want := range []string{"app.js", "style.css", `id="sessions"`, `id="runs"`} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard index missing %q", want)
		}
	}

	// Bare /dashboard redirects into the mount.
	req = httptest.NewRequest(http.MethodGet, "/dashboard", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMovedPermanently && w.Code != http.StatusPermanentRedirect && w.Code != http.StatusFound {
		t.Errorf("GET /dashboard = %d, want redirect", w.Code)
	}
}

func TestFinalizeStampsAndMeasures(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w := postJSON(t, h, "/v1/ingest", map[string]any{
		"snapshots": []any{zeroSnapshot("stamp-vm", 0), zeroSnapshot("stamp-vm", 1)},
	})
	if w.Code != 200 {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/vms/stamp-vm/finish", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("finish = %d: %s", rec.Code, rec.Body.String())
	}

	r, err := s.DB().Latest("stamp-vm")
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	if r.FinalizedAt == 0 {
		t.Fatal("finalized record has no FinalizedAt stamp")
	}
	if got := s.counters.finalizeAppends.Load(); got != 1 {
		t.Fatalf("finalizeAppends = %d, want 1", got)
	}

	// The stamped record must be visible through the query API.
	code, body := getRuns(t, h, "?app=stamp-vm")
	if code != 200 || body["count"].(float64) != 1 {
		t.Fatalf("runs for stamp-vm: code=%d body=%v", code, body)
	}
	row := body["runs"].([]any)[0].(map[string]any)
	if row["finalized_at"].(string) == "" {
		t.Fatal("run row missing finalized_at")
	}
}
