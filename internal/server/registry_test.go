package server

import (
	"fmt"
	"testing"
)

func newSession(vm string) *session { return &session{vm: vm} }

func TestRegistryGetOrCreate(t *testing.T) {
	r := newRegistry(4)
	s1, created, err := r.getOrCreate("vm-1", func() (*session, error) { return newSession("vm-1"), nil })
	if err != nil || !created {
		t.Fatalf("first getOrCreate: created=%v err=%v", created, err)
	}
	s2, created, err := r.getOrCreate("vm-1", func() (*session, error) {
		t.Error("build called for existing session")
		return nil, nil
	})
	if err != nil || created {
		t.Fatalf("second getOrCreate: created=%v err=%v", created, err)
	}
	if s1 != s2 {
		t.Error("getOrCreate returned a different session")
	}
	if _, _, err := r.getOrCreate("vm-bad", func() (*session, error) { return nil, fmt.Errorf("boom") }); err == nil {
		t.Error("failing build: want error")
	}
	if _, ok := r.get("vm-bad"); ok {
		t.Error("failed build left a session behind")
	}
}

func TestRegistryRemoveOnlyMatchingSession(t *testing.T) {
	r := newRegistry(4)
	old := newSession("vm")
	r.getOrCreate("vm", func() (*session, error) { return old, nil })
	if !r.remove("vm", old) {
		t.Fatal("remove of live session failed")
	}
	if r.remove("vm", old) {
		t.Error("double remove succeeded")
	}
	// A new session under the same name must not be removable via the
	// old pointer (the janitor-vs-fresh-ingest race).
	fresh := newSession("vm")
	r.getOrCreate("vm", func() (*session, error) { return fresh, nil })
	if r.remove("vm", old) {
		t.Error("remove with stale pointer tore down the fresh session")
	}
	if got, ok := r.get("vm"); !ok || got != fresh {
		t.Error("fresh session lost")
	}
}

func TestRegistryStripesAcrossShards(t *testing.T) {
	r := newRegistry(8)
	const n = 200
	for i := 0; i < n; i++ {
		vm := fmt.Sprintf("vm-%03d", i)
		r.getOrCreate(vm, func() (*session, error) { return newSession(vm), nil })
	}
	if r.len() != n {
		t.Fatalf("registry holds %d sessions, want %d", r.len(), n)
	}
	counts := r.counts()
	if len(counts) != 8 {
		t.Fatalf("%d shards, want 8", len(counts))
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d shard(s) populated by %d sessions — striping broken", nonEmpty, n)
	}
	if got := len(r.names()); got != n {
		t.Errorf("names() returned %d, want %d", got, n)
	}
	names := r.names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestRegistryDefaultShardCount(t *testing.T) {
	if got := len(newRegistry(0).shards); got != defaultShards {
		t.Errorf("default shard count = %d, want %d", got, defaultShards)
	}
}
