package faultinject

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/wal"
)

func testBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRoundTripperErrorRate(t *testing.T) {
	srv := testBackend(t, "ok")
	rt := NewRoundTripper(srv.Client().Transport, 1)
	client := &http.Client{Transport: rt}
	rt.SetErrorRate(1)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("error rate 1.0: want every request to fail")
	}
	rt.SetErrorRate(0)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed injector: %v", err)
	}
	resp.Body.Close()
	if rt.Requests() != 2 || rt.Injected() != 1 {
		t.Errorf("requests=%d injected=%d, want 2 and 1", rt.Requests(), rt.Injected())
	}
}

func TestRoundTripperBlackout(t *testing.T) {
	srv := testBackend(t, "ok")
	rt := NewRoundTripper(srv.Client().Transport, 1)
	client := &http.Client{Transport: rt}
	rt.SetBlackout(true)
	for i := 0; i < 3; i++ {
		if _, err := client.Get(srv.URL); err == nil {
			t.Fatalf("blackout request %d succeeded", i)
		}
	}
	rt.SetBlackout(false)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-blackout: %v", err)
	}
	resp.Body.Close()
	if rt.Injected() != 3 {
		t.Errorf("injected = %d, want 3", rt.Injected())
	}
}

func TestRoundTripperTruncatesBody(t *testing.T) {
	body := strings.Repeat("x", 4096)
	srv := testBackend(t, body)
	rt := NewRoundTripper(srv.Client().Transport, 1)
	client := &http.Client{Transport: rt}
	rt.SetTruncateRate(1)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncated response should still connect: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("reading a truncated body: want a mid-read error, got clean EOF")
	}
	if len(got) >= len(body) {
		t.Errorf("read %d bytes of a %d-byte body; nothing was cut", len(got), len(body))
	}
	if rt.Truncated() != 1 {
		t.Errorf("truncated = %d, want 1", rt.Truncated())
	}
}

func TestRoundTripperLatencyHonorsContext(t *testing.T) {
	srv := testBackend(t, "ok")
	rt := NewRoundTripper(srv.Client().Transport, 1)
	client := &http.Client{Transport: rt}
	rt.SetLatency(time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("latency past the deadline: want context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled request took %v; latency sleep ignored the context", elapsed)
	}
}

func TestRoundTripperDeterministic(t *testing.T) {
	srv := testBackend(t, "ok")
	outcomes := func(seed int64) []bool {
		rt := NewRoundTripper(srv.Client().Transport, seed)
		rt.SetErrorRate(0.5)
		client := &http.Client{Transport: rt}
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}

// testSnaps builds n snapshots for vm, mirroring the wal test helper.
func testSnaps(vm string, n int) []metrics.Snapshot {
	out := make([]metrics.Snapshot, n)
	for i := range out {
		out[i] = metrics.Snapshot{
			Time:   time.Duration(i) * 5 * time.Second,
			Node:   vm,
			Values: []float64{float64(i), float64(i + 1)},
		}
	}
	return out
}

// TestFSTransientENOSPC scripts the canonical degraded-durability fault:
// the disk fills (every write and segment creation fails with ENOSPC),
// the journal poisons itself, the fault heals, and Revive re-arms the
// journal so records on both sides of the outage replay.
func TestFSTransientENOSPC(t *testing.T) {
	fs := NewFS()
	dir := t.TempDir()
	j, err := wal.Open(wal.Config{
		Dir:             dir,
		Fsync:           wal.FsyncNever,
		OpenSegmentFile: fs.OpenSegmentFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	if _, err := j.AppendBatch("vm", testSnaps("vm", 2)); err != nil {
		t.Fatalf("pre-fault append: %v", err)
	}

	fs.FailWrites(syscall.ENOSPC)
	fs.FailOpens(syscall.ENOSPC)
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1)); err == nil {
		t.Fatal("append with a full disk succeeded")
	}
	if j.Failed() == nil {
		t.Fatal("journal not poisoned: abandoning the segment should have failed too")
	}
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1)); err == nil {
		t.Fatal("poisoned journal accepted an append")
	}
	if err := j.Revive(); err == nil {
		t.Fatal("Revive with the fault still active: want error")
	}
	if fs.FailedWrites() == 0 || fs.FailedOpens() == 0 {
		t.Errorf("failedWrites=%d failedOpens=%d, want both nonzero", fs.FailedWrites(), fs.FailedOpens())
	}

	// The disk frees up.
	fs.FailWrites(nil)
	fs.FailOpens(nil)
	if err := j.Revive(); err != nil {
		t.Fatalf("Revive after heal: %v", err)
	}
	if j.Failed() != nil {
		t.Fatalf("journal still poisoned after Revive: %v", j.Failed())
	}
	if _, err := j.AppendBatch("vm", testSnaps("vm", 3)); err != nil {
		t.Fatalf("post-revive append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	snaps := 0
	if _, err := wal.Replay(dir, wal.Position{}, func(pos wal.Position, rec wal.Record) error {
		snaps += len(rec.Snaps)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// The two pre-fault and three post-revive snapshots survive; the
	// batch that hit the full disk was never acknowledged.
	if snaps != 5 {
		t.Errorf("replayed %d snapshots, want 5", snaps)
	}
}

// TestFSSyncFailure exercises the fsync-error path: with FsyncAlways,
// a failing fsync surfaces on the append so the daemon can degrade.
func TestFSSyncFailure(t *testing.T) {
	fs := NewFS()
	j, err := wal.Open(wal.Config{
		Dir:             t.TempDir(),
		Fsync:           wal.FsyncAlways,
		OpenSegmentFile: fs.OpenSegmentFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1)); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(syscall.EIO)
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1)); err == nil {
		t.Fatal("append under FsyncAlways with a failing fsync succeeded")
	}
	if fs.FailedSyncs() == 0 {
		t.Error("no fsyncs were failed")
	}
	fs.FailSyncs(nil)
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1)); err != nil {
		t.Fatalf("append after fsync heal: %v", err)
	}
}
