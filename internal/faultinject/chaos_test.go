package faultinject

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTaskChaosPanicBudget(t *testing.T) {
	c := NewTaskChaos()
	c.PanicNext("compactor", 2)

	panics := 0
	attempt := func() {
		defer func() {
			if recover() != nil {
				panics++
			}
		}()
		c.Intercept("compactor")
	}
	for i := 0; i < 4; i++ {
		attempt()
	}
	if panics != 2 {
		t.Errorf("panics = %d, want 2", panics)
	}
	if got := c.InjectedPanics("compactor"); got != 2 {
		t.Errorf("InjectedPanics = %d, want 2", got)
	}
	// Other tasks are unaffected.
	c.Intercept("poller")
}

func TestTaskChaosStickRelease(t *testing.T) {
	c := NewTaskChaos()
	c.Stick("checkpointer")

	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		c.Intercept("checkpointer")
		close(done)
	}()
	<-entered
	select {
	case <-done:
		t.Fatal("Intercept returned while task was stuck")
	default:
	}
	c.Release("checkpointer")
	<-done
	// Release with nothing stuck is a no-op.
	c.Release("checkpointer")
	// A released task passes straight through.
	c.Intercept("checkpointer")
}

func TestFlipByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	if err := os.WriteFile(path, []byte{0x10, 0x20, 0x30}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x10 || b[1] != 0xDF || b[2] != 0x30 {
		t.Errorf("bytes = %x, want 10df30", b)
	}
	// Zero mask defaults to the low bit.
	if err := FlipByte(path, 0, 0); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if b[0] != 0x11 {
		t.Errorf("byte 0 = %x, want 11", b[0])
	}
	if err := FlipByte(path, 99, 1); err == nil {
		t.Error("FlipByte past EOF succeeded")
	}
	if err := FlipByte(filepath.Join(t.TempDir(), "missing"), 0, 1); err == nil {
		t.Error("FlipByte on a missing file succeeded")
	}
}
