// Package faultinject is the daemon's chaos harness: a flaky
// http.RoundTripper (errors, added latency, partial bodies, hard
// blackouts) for the gmetad poll path and a failing segment-file
// opener for the write-ahead journal. Both are deterministic under a
// seeded randomness source and fully controllable at runtime, so tests
// can script a fault timeline — 30% fetch errors here, a blackout
// there, transient ENOSPC on the journal — and assert the exact
// breaker/degraded-mode transitions the daemon makes in response.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// RoundTripper wraps an inner transport with injectable faults. The
// zero value is not usable; build one with NewRoundTripper. All knobs
// may be changed while requests are in flight.
type RoundTripper struct {
	inner http.RoundTripper

	mu        sync.Mutex
	rng       *rand.Rand
	errorRate float64       // probability of failing a request outright
	truncRate float64       // probability of cutting the response body short
	latency   time.Duration // added before every attempt
	blackout  bool          // while set, every request fails

	requests  atomic.Int64 // attempts seen
	injected  atomic.Int64 // requests failed by injection (rate or blackout)
	truncated atomic.Int64 // responses with a cut-short body
}

// NewRoundTripper wraps inner (nil means http.DefaultTransport) with a
// fault injector seeded for deterministic replay.
func NewRoundTripper(inner http.RoundTripper, seed int64) *RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &RoundTripper{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetErrorRate makes the given fraction of requests fail with an
// injected transport error before reaching the inner transport.
func (rt *RoundTripper) SetErrorRate(p float64) {
	rt.mu.Lock()
	rt.errorRate = p
	rt.mu.Unlock()
}

// SetTruncateRate makes the given fraction of responses arrive with a
// body cut off partway — the half-written XML a dying gmetad produces.
func (rt *RoundTripper) SetTruncateRate(p float64) {
	rt.mu.Lock()
	rt.truncRate = p
	rt.mu.Unlock()
}

// SetLatency adds a fixed delay before every request.
func (rt *RoundTripper) SetLatency(d time.Duration) {
	rt.mu.Lock()
	rt.latency = d
	rt.mu.Unlock()
}

// SetBlackout toggles a hard outage: while on, every request fails.
func (rt *RoundTripper) SetBlackout(on bool) {
	rt.mu.Lock()
	rt.blackout = on
	rt.mu.Unlock()
}

// Requests returns how many attempts the injector has seen.
func (rt *RoundTripper) Requests() int64 { return rt.requests.Load() }

// Injected returns how many requests failed by injection.
func (rt *RoundTripper) Injected() int64 { return rt.injected.Load() }

// Truncated returns how many response bodies were cut short.
func (rt *RoundTripper) Truncated() int64 { return rt.truncated.Load() }

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.requests.Add(1)
	rt.mu.Lock()
	latency := rt.latency
	fail := rt.blackout || (rt.errorRate > 0 && rt.rng.Float64() < rt.errorRate)
	trunc := !fail && rt.truncRate > 0 && rt.rng.Float64() < rt.truncRate
	rt.mu.Unlock()
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if fail {
		rt.injected.Add(1)
		return nil, fmt.Errorf("faultinject: injected transport error for %s", req.URL)
	}
	resp, err := rt.inner.RoundTrip(req)
	if err != nil || !trunc {
		return resp, err
	}
	rt.truncated.Add(1)
	// Cut the body partway: deliver at most half the advertised length
	// (or a fixed prefix when the length is unknown) and then fail the
	// read the way a torn-down connection does.
	limit := resp.ContentLength / 2
	if limit <= 0 {
		limit = 512
	}
	resp.Body = &truncatedBody{inner: resp.Body, remaining: limit}
	return resp, nil
}

// truncatedBody yields a prefix of the wrapped body and then errors, so
// the client sees a mid-body connection failure rather than clean EOF.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faultinject: response body truncated")
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The inner body really ended before the cut; pass EOF through.
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = fmt.Errorf("faultinject: response body truncated")
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// FS opens journal segment files with injectable failures: plug its
// OpenSegmentFile into wal.Config to script append, fsync, and
// segment-creation errors (transient ENOSPC being the canonical case).
// Healing is just setting the error back to nil.
type FS struct {
	mu       sync.Mutex
	writeErr error // non-nil: every segment write fails with it
	syncErr  error // non-nil: every fsync fails with it
	openErr  error // non-nil: every segment creation fails with it

	failedWrites atomic.Int64
	failedSyncs  atomic.Int64
	failedOpens  atomic.Int64
}

// NewFS builds a healthy failing-FS wrapper.
func NewFS() *FS { return &FS{} }

// FailWrites makes every segment write fail with err; nil heals.
func (fs *FS) FailWrites(err error) {
	fs.mu.Lock()
	fs.writeErr = err
	fs.mu.Unlock()
}

// FailSyncs makes every segment fsync fail with err; nil heals.
func (fs *FS) FailSyncs(err error) {
	fs.mu.Lock()
	fs.syncErr = err
	fs.mu.Unlock()
}

// FailOpens makes every segment creation fail with err; nil heals.
func (fs *FS) FailOpens(err error) {
	fs.mu.Lock()
	fs.openErr = err
	fs.mu.Unlock()
}

// FailedWrites returns how many writes the injector failed.
func (fs *FS) FailedWrites() int64 { return fs.failedWrites.Load() }

// FailedSyncs returns how many fsyncs the injector failed.
func (fs *FS) FailedSyncs() int64 { return fs.failedSyncs.Load() }

// FailedOpens returns how many segment creations the injector failed.
func (fs *FS) FailedOpens() int64 { return fs.failedOpens.Load() }

// OpenSegmentFile matches wal.Config.OpenSegmentFile.
func (fs *FS) OpenSegmentFile(name string, flag int, perm os.FileMode) (wal.SegmentFile, error) {
	fs.mu.Lock()
	openErr := fs.openErr
	fs.mu.Unlock()
	if openErr != nil {
		fs.failedOpens.Add(1)
		return nil, fmt.Errorf("faultinject: open %s: %w", name, openErr)
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f}, nil
}

// faultFile is one segment file routed through the injector.
type faultFile struct {
	fs *FS
	f  *os.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	werr := ff.fs.writeErr
	ff.fs.mu.Unlock()
	if werr != nil {
		ff.fs.failedWrites.Add(1)
		return 0, fmt.Errorf("faultinject: write %s: %w", ff.f.Name(), werr)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	serr := ff.fs.syncErr
	ff.fs.mu.Unlock()
	if serr != nil {
		ff.fs.failedSyncs.Add(1)
		return fmt.Errorf("faultinject: sync %s: %w", ff.f.Name(), serr)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
