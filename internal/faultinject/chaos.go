package faultinject

import (
	"fmt"
	"os"
	"sync"
)

// TaskChaos injects faults into supervised background tasks through
// the supervisor's Intercept hook (supervise.Config.Intercept): a
// scripted panic loop (a crashing compactor), or a stuck task that
// blocks without beating its heartbeat (a wedged checkpointer). All
// fault scripts are exact counts or explicit stick/release pairs, so a
// chaos scenario is deterministic — no randomness involved.
type TaskChaos struct {
	mu     sync.Mutex
	panics map[string]int           // task -> remaining injected panics
	stuck  map[string]chan struct{} // task -> release channel while stuck

	injectedPanics map[string]int // task -> panics actually injected
}

// NewTaskChaos builds an empty injector; plug Intercept into
// supervise.Config.Intercept.
func NewTaskChaos() *TaskChaos {
	return &TaskChaos{
		panics:         make(map[string]int),
		stuck:          make(map[string]chan struct{}),
		injectedPanics: make(map[string]int),
	}
}

// PanicNext makes the named task's next n attempts panic before the
// task body runs — a deterministic crash loop the supervisor must ride
// out with backoff restarts.
func (c *TaskChaos) PanicNext(task string, n int) {
	c.mu.Lock()
	c.panics[task] = n
	c.mu.Unlock()
}

// Stick blocks the named task's next attempt until Release — the task
// stops beating its heartbeat and must be detected as wedged.
func (c *TaskChaos) Stick(task string) {
	c.mu.Lock()
	if _, ok := c.stuck[task]; !ok {
		c.stuck[task] = make(chan struct{})
	}
	c.mu.Unlock()
}

// Release unblocks a stuck task (no-op if it is not stuck).
func (c *TaskChaos) Release(task string) {
	c.mu.Lock()
	ch, ok := c.stuck[task]
	if ok {
		delete(c.stuck, task)
	}
	c.mu.Unlock()
	if ok {
		close(ch)
	}
}

// InjectedPanics reports how many panics were actually injected into
// the named task.
func (c *TaskChaos) InjectedPanics(task string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injectedPanics[task]
}

// Intercept is the supervise.Config.Intercept hook: it runs at the top
// of every task attempt and applies whatever fault is scripted for the
// task — blocking while stuck, then panicking if a panic budget
// remains.
func (c *TaskChaos) Intercept(task string) {
	c.mu.Lock()
	ch := c.stuck[task]
	c.mu.Unlock()
	if ch != nil {
		<-ch
	}
	c.mu.Lock()
	n := c.panics[task]
	if n > 0 {
		c.panics[task] = n - 1
		c.injectedPanics[task]++
		c.mu.Unlock()
		panic(fmt.Sprintf("faultinject: scripted panic in task %s (%d left)", task, n-1))
	}
	c.mu.Unlock()
}

// FlipByte XORs the byte at off in path with mask — simulated bit rot
// for storage-scrubber tests. A zero mask defaults to flipping the low
// bit. The flip is in place and unsynced, like real silent corruption.
func FlipByte(path string, off int64, mask byte) error {
	if mask == 0 {
		mask = 0x01
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faultinject: open %s: %w", path, err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("faultinject: read %s@%d: %w", path, off, err)
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("faultinject: write %s@%d: %w", path, off, err)
	}
	return nil
}
