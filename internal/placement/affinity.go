// Package placement is the live class-aware placement service: it keeps
// a host inventory with a per-class load vector per host, predicts an
// incoming application's class composition from live classification
// state, historical appdb records, or a configured prior, and scores
// candidate hosts with the paper's complementary-class heuristic
// (Section 5: co-locate CPU-bound work with I/O-, network- or
// paging-bound work; avoid stacking applications of the same class)
// priced by the Section 4.4 cost-model rates. The same affinity logic
// drives both this service and the offline class-aware scheduler in
// internal/sched, so the Figure 4 simulation and the live daemon share
// one implementation.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/appclass"
	"repro/internal/costmodel"
)

// complementDiscount scales the bonus for co-locating complementary
// classes relative to the full same-class contention penalty.
const complementDiscount = 0.25

// diskShareFactor scales the partial penalty for pairing the two
// disk-queueing classes (I/O and paging).
const diskShareFactor = 0.5

// Affinity returns the marginal interference weight of co-locating one
// unit of class a with one unit of class b, priced by the provider's
// α..ε rates:
//
//   - same non-idle class: the pair contends fully on one resource, so
//     the weight is that resource's rate (α for CPU·CPU, γ for I/O·I/O, …);
//   - CPU with I/O, network, or paging: complementary — CPU-bound work
//     overlaps with device waits, so the pair earns a discount of
//     -0.25·(α+other)/2;
//   - I/O with paging: both queue on the disk, a partial penalty of
//     0.5·(β+γ)/2;
//   - anything with idle: zero (idle work contends with nothing);
//   - I/O with network: zero (independent devices).
//
// Positive weights repel, negative weights attract; zero is neutral.
func Affinity(a, b appclass.Class, rates costmodel.Rates) float64 {
	if a == appclass.Idle || b == appclass.Idle {
		return 0
	}
	if a == b {
		return rates.Rate(a)
	}
	if (a == appclass.IO && b == appclass.Mem) || (a == appclass.Mem && b == appclass.IO) {
		return diskShareFactor * (rates.Rate(appclass.IO) + rates.Rate(appclass.Mem)) / 2
	}
	if a == appclass.CPU || b == appclass.CPU {
		other := a
		if other == appclass.CPU {
			other = b
		}
		return -complementDiscount * (rates.Rate(appclass.CPU) + rates.Rate(other)) / 2
	}
	return 0
}

// CompositionScore scores placing an application with class composition
// comp onto a host whose resident load vector is load: the sum over all
// class pairs of load·comp·Affinity. Lower is better; a negative score
// means the host's residents are complementary to the newcomer.
func CompositionScore(load, comp map[appclass.Class]float64, rates costmodel.Rates) float64 {
	var s float64
	for a, la := range load {
		if la == 0 {
			continue
		}
		for b, cb := range comp {
			if cb == 0 {
				continue
			}
			s += la * cb * Affinity(a, b, rates)
		}
	}
	return s
}

// Dominant returns the largest-fraction class of a composition, breaking
// ties in the paper's canonical class order. It returns "" for an empty
// composition.
func Dominant(comp map[appclass.Class]float64) appclass.Class {
	var best appclass.Class
	bestF := 0.0
	for _, c := range appclass.All() {
		if f := comp[c]; f > bestF {
			best, bestF = c, f
		}
	}
	return best
}

// DealByClass spreads jobs of the same class across bins so that each
// bin mixes classes and contends on no single resource: jobs are
// grouped by label, classes are dealt largest first (ties broken by
// rank), round-robin over the bins, skipping full bins. This is the
// class-aware scheduler of the paper's Section 5.2, generic over the
// label type so both the Figure 4 simulation (sched.Kind labels) and
// the placement service (appclass.Class labels) run the identical
// algorithm.
func DealByClass[L comparable](jobs []L, bins, slots int, rank func(L) int) ([][]L, error) {
	if bins <= 0 || slots <= 0 {
		return nil, fmt.Errorf("placement: need positive bins and slots, got %d x %d", bins, slots)
	}
	if len(jobs) != bins*slots {
		return nil, fmt.Errorf("placement: %d jobs do not fill %d bins x %d slots", len(jobs), bins, slots)
	}
	byLabel := map[L][]L{}
	for _, j := range jobs {
		byLabel[j] = append(byLabel[j], j)
	}
	labels := make([]L, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if len(byLabel[labels[i]]) != len(byLabel[labels[j]]) {
			return len(byLabel[labels[i]]) > len(byLabel[labels[j]])
		}
		return rank(labels[i]) < rank(labels[j])
	})
	out := make([][]L, bins)
	next := 0
	for _, l := range labels {
		for range byLabel[l] {
			placed := false
			for tries := 0; tries < bins; tries++ {
				bin := (next + tries) % bins
				if len(out[bin]) < slots {
					out[bin] = append(out[bin], l)
					next = (bin + 1) % bins
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("placement: internal error, no free slot")
			}
		}
	}
	return out, nil
}
