package placement

import (
	"sort"

	"repro/internal/appclass"
)

// The migration advisor closes the loop the paper's introduction
// motivates ("with process migration techniques it is possible to
// migrate an application during its execution for load balancing"): a
// placement decision assumes a class composition, but multi-stage
// applications change behaviour mid-run. The advisor compares each
// host's assumed class mix against the mix realized by live
// classification and flags hosts that have drifted past the threshold —
// candidates for rebalancing.

// AppDrift is one resident application's assumed-vs-realized divergence.
type AppDrift struct {
	ID       string                     `json:"id"`
	App      string                     `json:"app"`
	Assumed  appclass.Class             `json:"assumed"`
	Realized appclass.Class             `json:"realized"`
	Drift    float64                    `json:"drift"`
	Live     map[appclass.Class]float64 `json:"live,omitempty"`
}

// Advice flags one drifted host.
type Advice struct {
	// Host is the flagged host.
	Host string `json:"host"`
	// Drift is the total-variation distance between the assumed and
	// realized class mixes, in [0,1].
	Drift float64 `json:"drift"`
	// Assumed is the normalized class mix the placements assumed.
	Assumed map[appclass.Class]float64 `json:"assumed"`
	// Realized is the normalized class mix live classification reports
	// (residents without live state contribute their assumed mix).
	Realized map[appclass.Class]float64 `json:"realized"`
	// Apps details each resident's divergence, worst first.
	Apps []AppDrift `json:"apps"`
}

// Advise compares every host's assumed class mix with its live realized
// mix and returns the hosts whose total-variation drift exceeds the
// configured threshold, worst first. Hosts with no residents, and
// residents with no live state, never contribute drift.
func (s *Service) Advise() []Advice {
	s.mu.Lock()
	live := s.live
	type resident struct {
		id, app string
		assumed map[appclass.Class]float64
	}
	type hostState struct {
		name      string
		residents []resident
	}
	hosts := make([]hostState, 0, len(s.hosts))
	for _, h := range s.hosts {
		hs := hostState{name: h.spec.Name}
		for _, p := range h.placed {
			hs.residents = append(hs.residents, resident{id: p.id, app: p.app, assumed: p.assumed})
		}
		sort.Slice(hs.residents, func(i, j int) bool { return hs.residents[i].id < hs.residents[j].id })
		hosts = append(hosts, hs)
	}
	threshold := s.cfg.DriftThreshold
	s.mu.Unlock()

	// Live lookups run outside the service lock: the daemon's LiveFunc
	// takes per-session locks of its own.
	var out []Advice
	for _, hs := range hosts {
		if len(hs.residents) == 0 {
			continue
		}
		assumed := make(map[appclass.Class]float64)
		realized := make(map[appclass.Class]float64)
		var apps []AppDrift
		for _, r := range hs.residents {
			addComp(assumed, r.assumed)
			cur := r.assumed
			var liveComp map[appclass.Class]float64
			if live != nil {
				if c, ok := live(r.app); ok && len(c) > 0 {
					cur, liveComp = c, c
				}
			}
			addComp(realized, cur)
			apps = append(apps, AppDrift{
				ID:       r.id,
				App:      r.app,
				Assumed:  Dominant(r.assumed),
				Realized: Dominant(cur),
				Drift:    tvDistance(normalize(r.assumed), normalize(cur)),
				Live:     cloneComp(liveComp),
			})
		}
		a := Advice{
			Host:     hs.name,
			Assumed:  normalize(assumed),
			Realized: normalize(realized),
			Apps:     apps,
		}
		a.Drift = tvDistance(a.Assumed, a.Realized)
		if a.Drift <= threshold {
			continue
		}
		sort.Slice(a.Apps, func(i, j int) bool {
			if a.Apps[i].Drift != a.Apps[j].Drift {
				return a.Apps[i].Drift > a.Apps[j].Drift
			}
			return a.Apps[i].ID < a.Apps[j].ID
		})
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Drift != out[j].Drift {
			return out[i].Drift > out[j].Drift
		}
		return out[i].Host < out[j].Host
	})
	return out
}

func addComp(dst, src map[appclass.Class]float64) {
	for c, f := range src {
		dst[c] += f
	}
}

// normalize scales a non-negative class vector to sum to 1 (empty and
// all-zero vectors come back empty).
func normalize(m map[appclass.Class]float64) map[appclass.Class]float64 {
	var total float64
	for _, f := range m {
		total += f
	}
	out := make(map[appclass.Class]float64, len(m))
	if total == 0 {
		return out
	}
	for c, f := range m {
		if f != 0 {
			out[c] = f / total
		}
	}
	return out
}

// tvDistance is the total-variation distance between two normalized
// class distributions: half the L1 distance, in [0,1].
func tvDistance(a, b map[appclass.Class]float64) float64 {
	var d float64
	for _, c := range appclass.All() {
		diff := a[c] - b[c]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d / 2
}
