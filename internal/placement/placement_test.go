package placement

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/costmodel"
)

func unitRates() costmodel.Rates {
	return costmodel.Rates{CPU: 1, Mem: 1, IO: 1, Net: 1}
}

func comp(c appclass.Class) map[appclass.Class]float64 {
	return map[appclass.Class]float64{c: 1}
}

func TestAffinity(t *testing.T) {
	r := costmodel.Rates{CPU: 10, Mem: 8, IO: 6, Net: 4, Idle: 1}
	tests := []struct {
		a, b appclass.Class
		want float64
	}{
		{appclass.CPU, appclass.CPU, 10},               // same class: full contention at α
		{appclass.IO, appclass.IO, 6},                  // same class at γ
		{appclass.CPU, appclass.IO, -0.25 * 8},         // complementary: -0.25·(10+6)/2
		{appclass.CPU, appclass.Net, -0.25 * 7},        // -0.25·(10+4)/2
		{appclass.CPU, appclass.Mem, -0.25 * 9},        // -0.25·(10+8)/2
		{appclass.IO, appclass.Mem, 0.5 * (6 + 8) / 2}, // disk-sharing pair
		{appclass.IO, appclass.Net, 0},                 // independent devices
		{appclass.Idle, appclass.CPU, 0},
		{appclass.Idle, appclass.Idle, 0},
	}
	for _, tc := range tests {
		got := Affinity(tc.a, tc.b, r)
		if got != tc.want {
			t.Errorf("Affinity(%s,%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if sym := Affinity(tc.b, tc.a, r); sym != got {
			t.Errorf("Affinity(%s,%s) = %v not symmetric (%v)", tc.b, tc.a, sym, got)
		}
	}
}

func TestCompositionScore(t *testing.T) {
	r := unitRates()
	load := map[appclass.Class]float64{appclass.CPU: 1}
	if got := CompositionScore(load, comp(appclass.CPU), r); got != 1 {
		t.Errorf("cpu on cpu = %v, want 1", got)
	}
	if got := CompositionScore(load, comp(appclass.IO), r); got >= 0 {
		t.Errorf("io on cpu = %v, want negative (complementary)", got)
	}
	if got := CompositionScore(nil, comp(appclass.CPU), r); got != 0 {
		t.Errorf("empty host = %v, want 0", got)
	}
	// Half-CPU half-IO incoming onto a CPU-loaded host: 0.5·1 + 0.5·(-0.25).
	mixed := map[appclass.Class]float64{appclass.CPU: 0.5, appclass.IO: 0.5}
	if got, want := CompositionScore(load, mixed, r), 0.5-0.5*0.25; got != want {
		t.Errorf("mixed = %v, want %v", got, want)
	}
}

func TestDominant(t *testing.T) {
	if got := Dominant(map[appclass.Class]float64{appclass.IO: 0.6, appclass.CPU: 0.4}); got != appclass.IO {
		t.Errorf("dominant = %s, want io", got)
	}
	// Tie broken in canonical order (idle, io, cpu, net, mem).
	if got := Dominant(map[appclass.Class]float64{appclass.Net: 0.5, appclass.IO: 0.5}); got != appclass.IO {
		t.Errorf("tie dominant = %s, want io", got)
	}
	if got := Dominant(nil); got != "" {
		t.Errorf("empty dominant = %q, want empty", got)
	}
}

func TestDealByClassSpreads(t *testing.T) {
	jobs := []appclass.Class{
		appclass.CPU, appclass.CPU, appclass.CPU,
		appclass.IO, appclass.IO, appclass.IO,
		appclass.Net, appclass.Net, appclass.Net,
	}
	rank := func(c appclass.Class) int {
		for i, x := range appclass.All() {
			if x == c {
				return i
			}
		}
		return len(appclass.All())
	}
	bins, err := DealByClass(jobs, 3, 3, rank)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bins {
		seen := map[appclass.Class]bool{}
		for _, c := range b {
			if seen[c] {
				t.Errorf("bin %d repeats class %s: %v", i, c, b)
			}
			seen[c] = true
		}
	}
	if _, err := DealByClass(jobs, 0, 3, rank); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := DealByClass(jobs[:2], 3, 3, rank); err == nil {
		t.Error("count mismatch: want error")
	}
}

func newTestService(t *testing.T, hosts []HostSpec, cfg Config) *Service {
	t.Helper()
	cfg.Hosts = hosts
	if cfg.Rates == (costmodel.Rates{}) {
		cfg.Rates = unitRates()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func threeHosts() []HostSpec {
	return []HostSpec{{Name: "h1", Slots: 3}, {Name: "h2", Slots: 3}, {Name: "h3", Slots: 3}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no hosts: want error")
	}
	if _, err := New(Config{Hosts: []HostSpec{{Name: "a", Slots: 0}}}); err == nil {
		t.Error("zero slots: want error")
	}
	if _, err := New(Config{Hosts: []HostSpec{{Name: "a", Slots: 1}, {Name: "a", Slots: 1}}}); err == nil {
		t.Error("duplicate host: want error")
	}
	if _, err := New(Config{Hosts: []HostSpec{{Name: "", Slots: 1}}}); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := New(Config{
		Hosts: []HostSpec{{Name: "a", Slots: 1}},
		Prior: map[appclass.Class]float64{"bogus": 1},
	}); err == nil {
		t.Error("invalid prior class: want error")
	}
	if _, err := New(Config{
		Hosts: []HostSpec{{Name: "a", Slots: 1}},
		Rates: costmodel.Rates{CPU: -1},
	}); err == nil {
		t.Error("negative rate: want error")
	}
}

func TestPlaceCoLocatesComplementaryClasses(t *testing.T) {
	s := newTestService(t, threeHosts(), Config{})
	d1, err := s.PlaceComposition("cpu-app", comp(appclass.CPU), "request")
	if err != nil {
		t.Fatal(err)
	}
	if d1.Host != "h1" {
		t.Errorf("first placement on %s, want h1 (inventory order)", d1.Host)
	}
	// An I/O app should join the CPU app (negative score), not an empty
	// host (zero score).
	d2, err := s.PlaceComposition("io-app", comp(appclass.IO), "request")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Host != d1.Host {
		t.Errorf("io placed on %s, want co-located with cpu on %s", d2.Host, d1.Host)
	}
	if d2.Score >= 0 {
		t.Errorf("io-on-cpu score = %v, want negative", d2.Score)
	}
	if len(d2.Alternatives) != 2 {
		t.Errorf("%d alternatives, want 2", len(d2.Alternatives))
	}
	// A second CPU app must avoid the loaded host.
	d3, err := s.PlaceComposition("cpu-app-2", comp(appclass.CPU), "request")
	if err != nil {
		t.Fatal(err)
	}
	if d3.Host == d1.Host {
		t.Errorf("second cpu app stacked on %s", d3.Host)
	}
}

func TestPlaceSpreadsSameClass(t *testing.T) {
	s := newTestService(t, threeHosts(), Config{})
	used := map[string]bool{}
	for i := 0; i < 3; i++ {
		d, err := s.PlaceComposition(fmt.Sprintf("cpu-%d", i), comp(appclass.CPU), "request")
		if err != nil {
			t.Fatal(err)
		}
		if used[d.Host] {
			t.Errorf("cpu-%d stacked on already-used host %s", i, d.Host)
		}
		used[d.Host] = true
	}
}

func TestPlaceCapacityAndRelease(t *testing.T) {
	s := newTestService(t, []HostSpec{{Name: "only", Slots: 1}}, Config{})
	d, err := s.Place("a")
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != "prior" {
		t.Errorf("source = %q, want prior (no live, no history)", d.Source)
	}
	if _, err := s.Place("b"); err == nil {
		t.Error("full inventory: want error")
	}
	if !s.Release(d.ID) {
		t.Error("release active placement: want true")
	}
	if s.Release(d.ID) {
		t.Error("double release: want false")
	}
	if s.Release("p-999") {
		t.Error("unknown id: want false")
	}
	if _, err := s.Place("b"); err != nil {
		t.Errorf("place after release: %v", err)
	}
	h, ok := s.Host("only")
	if !ok || h.Used != 1 || h.Free != 0 {
		t.Errorf("host view = %+v ok=%v", h, ok)
	}
}

func TestReleaseClearsLoadExactly(t *testing.T) {
	s := newTestService(t, []HostSpec{{Name: "h", Slots: 4}}, Config{})
	var ids []string
	for i := 0; i < 4; i++ {
		d, err := s.PlaceComposition(fmt.Sprintf("a%d", i),
			map[appclass.Class]float64{appclass.CPU: 0.3, appclass.IO: 0.7}, "request")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, d.ID)
	}
	for _, id := range ids {
		s.Release(id)
	}
	h, _ := s.Host("h")
	for c, f := range h.Load {
		if f != 0 {
			t.Errorf("residual load %s=%v after releasing everything", c, f)
		}
	}
	if h.Used != 0 {
		t.Errorf("used = %d after releasing everything", h.Used)
	}
}

func TestPredictChain(t *testing.T) {
	db := appdb.New()
	if err := db.Put(appdb.Record{
		App: "seen", Class: appclass.IO,
		Composition:   map[appclass.Class]float64{appclass.IO: 1},
		ExecutionTime: time.Minute, Samples: 10,
	}); err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, threeHosts(), Config{History: db})

	if c, src := s.Predict("unseen"); src != "prior" || len(c) == 0 {
		t.Errorf("unseen = %v source %q, want prior", c, src)
	}
	if c, src := s.Predict("seen"); src != "history" || c[appclass.IO] != 1 {
		t.Errorf("seen = %v source %q, want history io=1", c, src)
	}
	s.SetLive(func(app string) (map[appclass.Class]float64, bool) {
		if app == "seen" {
			return map[appclass.Class]float64{appclass.Net: 1}, true
		}
		return nil, false
	})
	if c, src := s.Predict("seen"); src != "live" || c[appclass.Net] != 1 {
		t.Errorf("live seen = %v source %q, want live net=1", c, src)
	}
}

func TestPlaceValidation(t *testing.T) {
	s := newTestService(t, threeHosts(), Config{})
	if _, err := s.Place(""); err == nil {
		t.Error("empty app: want error")
	}
	if _, err := s.PlaceComposition("a", nil, "request"); err == nil {
		t.Error("empty composition: want error")
	}
	if _, err := s.PlaceComposition("a", map[appclass.Class]float64{"bogus": 1}, "request"); err == nil {
		t.Error("invalid class: want error")
	}
	if _, err := s.PlaceComposition("a", map[appclass.Class]float64{appclass.CPU: 2}, "request"); err == nil {
		t.Error("fraction > 1: want error")
	}
}

func TestPlacementsOrderedBySequence(t *testing.T) {
	s := newTestService(t, []HostSpec{{Name: "h", Slots: 12}}, Config{})
	for i := 0; i < 11; i++ {
		if _, err := s.Place(fmt.Sprintf("app-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	views := s.Placements()
	if len(views) != 11 {
		t.Fatalf("%d placements, want 11", len(views))
	}
	// p-10 and p-11 must sort after p-9 (numeric, not lexical).
	for i, v := range views {
		if want := fmt.Sprintf("p-%d", i+1); v.ID != want {
			t.Errorf("placement %d has id %s, want %s", i, v.ID, want)
		}
	}
}

func TestStat(t *testing.T) {
	s := newTestService(t, threeHosts(), Config{})
	if _, err := s.Place("a"); err != nil {
		t.Fatal(err)
	}
	st := s.Stat()
	if st.Hosts != 3 || st.Slots != 9 || st.Placements != 1 {
		t.Errorf("stat = %+v, want 3 hosts, 9 slots, 1 placement", st)
	}
}

func TestAdviseFlagsDriftedHosts(t *testing.T) {
	s := newTestService(t, threeHosts(), Config{DriftThreshold: 0.5})
	d, err := s.PlaceComposition("shape-shifter", comp(appclass.CPU), "request")
	if err != nil {
		t.Fatal(err)
	}
	// No live state: realized == assumed, nothing to advise.
	if got := s.Advise(); len(got) != 0 {
		t.Fatalf("advise with no live state = %v, want none", got)
	}
	// The app's live behaviour has flipped from CPU to IO: TV distance 1.
	s.SetLive(func(app string) (map[appclass.Class]float64, bool) {
		return map[appclass.Class]float64{appclass.IO: 1}, true
	})
	advice := s.Advise()
	if len(advice) != 1 {
		t.Fatalf("advise = %v, want 1 host flagged", advice)
	}
	a := advice[0]
	if a.Host != d.Host {
		t.Errorf("flagged %s, want %s", a.Host, d.Host)
	}
	if a.Drift != 1 {
		t.Errorf("drift = %v, want 1 (full class flip)", a.Drift)
	}
	if len(a.Apps) != 1 || a.Apps[0].Assumed != appclass.CPU || a.Apps[0].Realized != appclass.IO {
		t.Errorf("app drift = %+v, want cpu->io", a.Apps)
	}
	// Below-threshold drift stays quiet.
	s.SetLive(func(app string) (map[appclass.Class]float64, bool) {
		return map[appclass.Class]float64{appclass.CPU: 0.8, appclass.IO: 0.2}, true
	})
	if got := s.Advise(); len(got) != 0 {
		t.Errorf("advise below threshold = %v, want none", got)
	}
}

func TestPlacementErrorsMentionPackage(t *testing.T) {
	_, err := New(Config{})
	if err == nil || !strings.Contains(err.Error(), "placement:") {
		t.Errorf("error %v should carry the placement: prefix", err)
	}
}
