package placement

import (
	"fmt"
	"testing"

	"repro/internal/appclass"
)

// BenchmarkPlace1kHosts measures the placement hot path — scoring every
// host in a 1000-host inventory and committing the best — with the
// inventory pre-loaded to a realistic mixed-class occupancy. Each
// iteration places and releases one application so the inventory state
// is identical for every iteration.
func BenchmarkPlace1kHosts(b *testing.B) {
	const hosts = 1000
	specs := make([]HostSpec, hosts)
	for i := range specs {
		specs[i] = HostSpec{Name: fmt.Sprintf("host-%04d", i), Slots: 8}
	}
	s, err := New(Config{Hosts: specs})
	if err != nil {
		b.Fatal(err)
	}
	classes := []appclass.Class{appclass.CPU, appclass.IO, appclass.Net, appclass.Mem}
	for i := 0; i < hosts*4; i++ {
		c := classes[i%len(classes)]
		if _, err := s.PlaceComposition(fmt.Sprintf("resident-%d", i),
			map[appclass.Class]float64{c: 0.8, appclass.Idle: 0.2}, "request"); err != nil {
			b.Fatal(err)
		}
	}
	comp := map[appclass.Class]float64{appclass.CPU: 0.6, appclass.IO: 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := s.PlaceComposition("probe", comp, "request")
		if err != nil {
			b.Fatal(err)
		}
		s.Release(d.ID)
	}
}

// BenchmarkCompositionScore isolates the pairwise scoring kernel.
func BenchmarkCompositionScore(b *testing.B) {
	load := map[appclass.Class]float64{
		appclass.CPU: 2.1, appclass.IO: 1.4, appclass.Net: 0.6, appclass.Mem: 0.9, appclass.Idle: 0.4,
	}
	comp := map[appclass.Class]float64{appclass.CPU: 0.5, appclass.IO: 0.3, appclass.Net: 0.2}
	rates := unitRates()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += CompositionScore(load, comp, rates)
	}
	_ = sink
}
