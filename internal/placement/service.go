package placement

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/costmodel"
)

// ErrNoCapacity reports that every host in the inventory is full; the
// serving layer maps it to 409 Conflict while validation failures stay
// 400s.
var ErrNoCapacity = errors.New("placement: no host has a free slot")

// HostSpec configures one host in the inventory.
type HostSpec struct {
	// Name identifies the host.
	Name string `json:"name"`
	// Slots is how many applications the host can run at once.
	Slots int `json:"slots"`
}

// LiveFunc looks up the live class composition of an application that
// is currently streaming snapshots (appclassd wires this to its session
// registry). The bool reports whether live state exists.
type LiveFunc func(app string) (map[appclass.Class]float64, bool)

// Config parameterizes the placement service.
type Config struct {
	// Hosts is the inventory (required, names unique, slots positive).
	Hosts []HostSpec
	// Rates are the cost-model prices weighting the affinity scores.
	// The zero value prices every class equally at 1 (idle at 0).
	Rates costmodel.Rates
	// Prior is the composition assumed for applications with no live or
	// historical state. Nil means uniform over the four active classes.
	Prior map[appclass.Class]float64
	// History is the application database consulted for returning
	// applications. Nil disables history lookups.
	History *appdb.DB
	// Live resolves live compositions; usually wired by the server via
	// SetLive. Nil disables live lookups.
	Live LiveFunc
	// DriftThreshold is the total-variation distance between a host's
	// assumed and realized class mixes above which the migration advisor
	// flags it. Zero means 0.25.
	DriftThreshold float64
	// Now supplies wall-clock time; tests inject fake clocks. Nil means
	// time.Now.
	Now func() time.Time
}

// Service is a concurrency-safe class-aware placement service.
type Service struct {
	mu         sync.Mutex
	cfg        Config
	hosts      []*host // in Config.Hosts order
	byName     map[string]*host
	placements map[string]*placed
	seq        int
	live       LiveFunc
}

// host is one inventory entry plus its resident placements and the
// per-class load vector (the sum of resident assumed compositions).
type host struct {
	spec   HostSpec
	placed map[string]*placed
	load   map[appclass.Class]float64
}

// placed is one active placement.
type placed struct {
	id      string
	app     string
	host    *host
	assumed map[appclass.Class]float64
	source  string
	score   float64
	at      time.Time
}

// New builds a placement service over the configured inventory.
func New(cfg Config) (*Service, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("placement: no hosts configured")
	}
	if cfg.Rates == (costmodel.Rates{}) {
		cfg.Rates = costmodel.Rates{CPU: 1, Mem: 1, IO: 1, Net: 1}
	}
	if err := cfg.Rates.Validate(); err != nil {
		return nil, err
	}
	if cfg.Prior == nil {
		cfg.Prior = map[appclass.Class]float64{
			appclass.CPU: 0.25, appclass.Mem: 0.25, appclass.IO: 0.25, appclass.Net: 0.25,
		}
	}
	if err := validComposition(cfg.Prior); err != nil {
		return nil, fmt.Errorf("placement: prior: %w", err)
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.25
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Service{
		cfg:        cfg,
		byName:     make(map[string]*host, len(cfg.Hosts)),
		placements: make(map[string]*placed),
		live:       cfg.Live,
	}
	for _, spec := range cfg.Hosts {
		if spec.Name == "" {
			return nil, fmt.Errorf("placement: host with empty name")
		}
		if spec.Slots <= 0 {
			return nil, fmt.Errorf("placement: host %q has %d slots, want positive", spec.Name, spec.Slots)
		}
		if _, dup := s.byName[spec.Name]; dup {
			return nil, fmt.Errorf("placement: duplicate host %q", spec.Name)
		}
		h := &host{
			spec:   spec,
			placed: make(map[string]*placed),
			load:   make(map[appclass.Class]float64),
		}
		s.hosts = append(s.hosts, h)
		s.byName[spec.Name] = h
	}
	return s, nil
}

func validComposition(comp map[appclass.Class]float64) error {
	var total float64
	for c, f := range comp {
		if !appclass.Valid(c) {
			return fmt.Errorf("invalid class %q", c)
		}
		if !(f >= 0 && f <= 1) { // also rejects NaN
			return fmt.Errorf("fraction %v for %s outside [0,1]", f, c)
		}
		total += f
	}
	if total > 1.01 {
		return fmt.Errorf("composition sums to %v > 1", total)
	}
	return nil
}

// SetLive wires the live composition lookup after construction (the
// daemon calls this with a closure over its session registry).
func (s *Service) SetLive(fn LiveFunc) {
	s.mu.Lock()
	s.live = fn
	s.mu.Unlock()
}

// Rates returns the configured cost-model rates.
func (s *Service) Rates() costmodel.Rates { return s.cfg.Rates }

// Predict estimates an application's class composition: live
// classification state first, then the mean composition of its
// historical appdb runs, then the configured prior. The source return
// is "live", "history", or "prior".
func (s *Service) Predict(app string) (map[appclass.Class]float64, string) {
	s.mu.Lock()
	live := s.live
	s.mu.Unlock()
	if live != nil {
		if comp, ok := live(app); ok && len(comp) > 0 {
			return cloneComp(comp), "live"
		}
	}
	if s.cfg.History != nil {
		if sum, err := s.cfg.History.Summarize(app); err == nil && len(sum.MeanComposition) > 0 {
			return cloneComp(sum.MeanComposition), "history"
		}
	}
	return cloneComp(s.cfg.Prior), "prior"
}

// HostScore is one candidate host's affinity score for a placement.
type HostScore struct {
	Host  string  `json:"host"`
	Score float64 `json:"score"`
	Free  int     `json:"free"`
}

// Decision is the outcome of one placement request.
type Decision struct {
	// ID releases the placement later (DELETE /v1/placements/{id}).
	ID string `json:"id"`
	// App is the placed application.
	App string `json:"app"`
	// Host is the chosen host.
	Host string `json:"host"`
	// Class is the dominant class of the predicted composition.
	Class appclass.Class `json:"class"`
	// Composition is the class composition the decision assumed.
	Composition map[appclass.Class]float64 `json:"composition"`
	// Source says where the composition came from: "live", "history",
	// "prior", or "request".
	Source string `json:"source"`
	// Score is the chosen host's affinity score (lower is better,
	// negative means complementary residents).
	Score float64 `json:"score"`
	// Alternatives ranks the other feasible hosts, best first.
	Alternatives []HostScore `json:"alternatives"`
	// At is the placement time.
	At time.Time `json:"-"`
}

// Place predicts app's composition and assigns it to the best host.
func (s *Service) Place(app string) (Decision, error) {
	if app == "" {
		return Decision{}, fmt.Errorf("placement: empty application name")
	}
	comp, source := s.Predict(app)
	return s.PlaceComposition(app, comp, source)
}

// PlaceComposition assigns app, with a caller-supplied class
// composition, to the feasible host with the lowest affinity score
// (ties broken by fewer residents, then by inventory order). It returns
// an error when every host is full.
func (s *Service) PlaceComposition(app string, comp map[appclass.Class]float64, source string) (Decision, error) {
	if app == "" {
		return Decision{}, fmt.Errorf("placement: empty application name")
	}
	if len(comp) == 0 {
		return Decision{}, fmt.Errorf("placement: empty composition for %q", app)
	}
	if err := validComposition(comp); err != nil {
		return Decision{}, fmt.Errorf("placement: %q: %w", app, err)
	}
	comp = cloneComp(comp)

	s.mu.Lock()
	defer s.mu.Unlock()
	type cand struct {
		h     *host
		score float64
		order int
	}
	cands := make([]cand, 0, len(s.hosts))
	for i, h := range s.hosts {
		if len(h.placed) >= h.spec.Slots {
			continue
		}
		cands = append(cands, cand{h: h, score: CompositionScore(h.load, comp, s.cfg.Rates), order: i})
	}
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("%w for %q", ErrNoCapacity, app)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		if len(cands[i].h.placed) != len(cands[j].h.placed) {
			return len(cands[i].h.placed) < len(cands[j].h.placed)
		}
		return cands[i].order < cands[j].order
	})
	best := cands[0]
	s.seq++
	p := &placed{
		id:      fmt.Sprintf("p-%d", s.seq),
		app:     app,
		host:    best.h,
		assumed: comp,
		source:  source,
		score:   best.score,
		at:      s.cfg.Now(),
	}
	best.h.placed[p.id] = p
	for c, f := range comp {
		best.h.load[c] += f
	}
	s.placements[p.id] = p

	d := Decision{
		ID:           p.id,
		App:          app,
		Host:         best.h.spec.Name,
		Class:        Dominant(comp),
		Composition:  cloneComp(comp),
		Source:       source,
		Score:        best.score,
		Alternatives: make([]HostScore, 0, len(cands)-1),
		At:           p.at,
	}
	for _, c := range cands[1:] {
		d.Alternatives = append(d.Alternatives, HostScore{
			Host:  c.h.spec.Name,
			Score: c.score,
			Free:  c.h.spec.Slots - len(c.h.placed),
		})
	}
	return d, nil
}

// Release removes a placement by ID, freeing its slot and load. It
// reports whether the ID was active.
func (s *Service) Release(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.placements[id]
	if !ok {
		return false
	}
	delete(s.placements, id)
	delete(p.host.placed, id)
	// Recompute instead of subtracting so float drift cannot accumulate
	// over long placement/release churn.
	recalcLoad(p.host)
	return true
}

func recalcLoad(h *host) {
	for c := range h.load {
		delete(h.load, c)
	}
	for _, p := range h.placed {
		for c, f := range p.assumed {
			h.load[c] += f
		}
	}
}

// PlacementView is the exported state of one active placement.
type PlacementView struct {
	ID          string                     `json:"id"`
	App         string                     `json:"app"`
	Host        string                     `json:"host"`
	Class       appclass.Class             `json:"class"`
	Composition map[appclass.Class]float64 `json:"composition"`
	Source      string                     `json:"source"`
	Score       float64                    `json:"score"`
	At          time.Time                  `json:"-"`
}

// HostView is the exported state of one host: capacity, residents, and
// the per-class load vector.
type HostView struct {
	Name       string                     `json:"name"`
	Slots      int                        `json:"slots"`
	Used       int                        `json:"used"`
	Free       int                        `json:"free"`
	Load       map[appclass.Class]float64 `json:"load"`
	Placements []PlacementView            `json:"placements"`
}

func (s *Service) viewLocked(h *host) HostView {
	v := HostView{
		Name:       h.spec.Name,
		Slots:      h.spec.Slots,
		Used:       len(h.placed),
		Free:       h.spec.Slots - len(h.placed),
		Load:       cloneComp(h.load),
		Placements: make([]PlacementView, 0, len(h.placed)),
	}
	for _, p := range h.placed {
		v.Placements = append(v.Placements, viewOf(p))
	}
	sort.Slice(v.Placements, func(i, j int) bool { return v.Placements[i].ID < v.Placements[j].ID })
	return v
}

func viewOf(p *placed) PlacementView {
	return PlacementView{
		ID:          p.id,
		App:         p.app,
		Host:        p.host.spec.Name,
		Class:       Dominant(p.assumed),
		Composition: cloneComp(p.assumed),
		Source:      p.source,
		Score:       p.score,
		At:          p.at,
	}
}

// Hosts returns every host's view in inventory order.
func (s *Service) Hosts() []HostView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HostView, 0, len(s.hosts))
	for _, h := range s.hosts {
		out = append(out, s.viewLocked(h))
	}
	return out
}

// Host returns one host's view by name.
func (s *Service) Host(name string) (HostView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.byName[name]
	if !ok {
		return HostView{}, false
	}
	return s.viewLocked(h), true
}

// Placements returns every active placement, ordered by ID sequence.
func (s *Service) Placements() []PlacementView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlacementView, 0, len(s.placements))
	for _, p := range s.placements {
		out = append(out, viewOf(p))
	}
	sort.Slice(out, func(i, j int) bool {
		return seqOf(out[i].ID) < seqOf(out[j].ID)
	})
	return out
}

// seqOf recovers the numeric sequence from a "p-N" placement ID so
// listings sort in placement order rather than lexically.
func seqOf(id string) int {
	var n int
	fmt.Sscanf(id, "p-%d", &n)
	return n
}

// Stats summarizes the inventory for /metricsz gauges.
type Stats struct {
	Hosts      int
	Slots      int
	Placements int
}

// Stat returns current inventory gauges.
func (s *Service) Stat() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Hosts: len(s.hosts), Placements: len(s.placements)}
	for _, h := range s.hosts {
		st.Slots += h.spec.Slots
	}
	return st
}

func cloneComp(m map[appclass.Class]float64) map[appclass.Class]float64 {
	out := make(map[appclass.Class]float64, len(m))
	for c, f := range m {
		out[c] = f
	}
	return out
}
