package simtime

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock Now = %v, want 0", c.Now())
	}
	if err := c.Advance(3 * time.Second); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", c.Now())
	}
	if err := c.Advance(-time.Second); err == nil {
		t.Error("negative advance: want error")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue(NewClock())
	var order []string
	add := func(name string, at time.Duration) {
		if err := q.At(at, func(time.Duration) { order = append(order, name) }); err != nil {
			t.Fatalf("At(%s): %v", name, err)
		}
	}
	add("c", 3*time.Second)
	add("a", 1*time.Second)
	add("b", 2*time.Second)
	if err := q.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if q.Clock().Now() != 10*time.Second {
		t.Errorf("clock after run = %v, want 10s", q.Clock().Now())
	}
}

func TestEventQueueSameInstantFIFO(t *testing.T) {
	q := NewEventQueue(NewClock())
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := q.At(time.Second, func(time.Duration) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant order = %v, want FIFO", order)
		}
	}
}

func TestEventQueueRejectsPast(t *testing.T) {
	q := NewEventQueue(NewClock())
	if err := q.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := q.At(time.Second, func(time.Duration) {}); err == nil {
		t.Error("scheduling in the past: want error")
	}
	if err := q.After(-time.Second, func(time.Duration) {}); err == nil {
		t.Error("negative After: want error")
	}
	if err := q.RunUntil(time.Second); err == nil {
		t.Error("RunUntil before now: want error")
	}
}

func TestEventQueueDeadlineInclusive(t *testing.T) {
	q := NewEventQueue(NewClock())
	fired := false
	_ = q.At(2*time.Second, func(time.Duration) { fired = true })
	if err := q.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event at deadline did not fire")
	}
}

func TestEventQueueEvery(t *testing.T) {
	q := NewEventQueue(NewClock())
	var times []time.Duration
	stop, err := q.Every(5*time.Second, func(now time.Duration) { times = append(times, now) })
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	if err := q.RunUntil(17 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("fired %d times, want 3 (at 5s,10s,15s): %v", len(times), times)
	}
	for i, want := range []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second} {
		if times[i] != want {
			t.Errorf("firing %d at %v, want %v", i, times[i], want)
		}
	}
	stop()
	if err := q.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Errorf("fired after stop: %d firings", len(times))
	}
}

func TestEventQueueEveryRejectsNonPositive(t *testing.T) {
	q := NewEventQueue(NewClock())
	if _, err := q.Every(0, func(time.Duration) {}); err == nil {
		t.Error("zero period: want error")
	}
}

func TestEventQueueStep(t *testing.T) {
	q := NewEventQueue(NewClock())
	count := 0
	_, err := q.Every(time.Second, func(time.Duration) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if count != 3 {
		t.Errorf("count = %d after 3 steps, want 3", count)
	}
	if q.Clock().Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", q.Clock().Now())
	}
}

func TestEventQueueSchedulingFromCallback(t *testing.T) {
	q := NewEventQueue(NewClock())
	var secondFired time.Duration
	_ = q.At(time.Second, func(now time.Duration) {
		_ = q.After(2*time.Second, func(now2 time.Duration) { secondFired = now2 })
	})
	if err := q.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if secondFired != 3*time.Second {
		t.Errorf("chained event fired at %v, want 3s", secondFired)
	}
}

func TestEventQueueLen(t *testing.T) {
	q := NewEventQueue(NewClock())
	_ = q.At(time.Second, func(time.Duration) {})
	_ = q.At(2*time.Second, func(time.Duration) {})
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	_ = q.RunUntil(5 * time.Second)
	if q.Len() != 0 {
		t.Errorf("Len after run = %d, want 0", q.Len())
	}
}
