// Package simtime provides the simulated clock and event scheduling that
// drive the virtual-machine resource simulator. The paper's experiments
// ran for hours of wall-clock time on VMware hosts; the reproduction
// advances a discrete clock in fixed one-second steps, which is the
// finest granularity any modeled metric (vmstat rates, Ganglia
// announcements, 5-second profiler samples) requires.
package simtime

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Tick is the base resolution of the simulation.
const Tick = time.Second

// Clock is a monotonically advancing simulated clock.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative advances are rejected.
func (c *Clock) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("simtime: cannot advance clock by negative duration %v", d)
	}
	c.now += d
	return nil
}

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq int64 // tiebreaker: FIFO among events at the same instant
	fn  func(now time.Duration)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("simtime: event scheduled in the past")

// EventQueue dispatches callbacks in simulated-time order. Events
// scheduled for the same instant run in scheduling order, which keeps
// the simulation deterministic.
type EventQueue struct {
	clock *Clock
	heap  eventHeap
	seq   int64
}

// NewEventQueue creates a queue driving the given clock.
func NewEventQueue(clock *Clock) *EventQueue {
	q := &EventQueue{clock: clock}
	heap.Init(&q.heap)
	return q
}

// Clock returns the queue's clock.
func (q *EventQueue) Clock() *Clock { return q.clock }

// At schedules fn to run at absolute simulated time at.
func (q *EventQueue) At(at time.Duration, fn func(now time.Duration)) error {
	if at < q.clock.Now() {
		return fmt.Errorf("%w: %v before now %v", ErrPast, at, q.clock.Now())
	}
	q.seq++
	heap.Push(&q.heap, &event{at: at, seq: q.seq, fn: fn})
	return nil
}

// After schedules fn to run d after the current simulated time.
func (q *EventQueue) After(d time.Duration, fn func(now time.Duration)) error {
	if d < 0 {
		return fmt.Errorf("%w: negative delay %v", ErrPast, d)
	}
	return q.At(q.clock.Now()+d, fn)
}

// Every schedules fn to run at a fixed period, starting one period from
// now, until the returned stop function is called. The first argument of
// fn is the firing time.
func (q *EventQueue) Every(period time.Duration, fn func(now time.Duration)) (stop func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("simtime: Every requires positive period, got %v", period)
	}
	stopped := false
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			// Re-arm; scheduling from a callback is always in the future.
			_ = q.At(now+period, tick)
		}
	}
	if err := q.After(period, tick); err != nil {
		return nil, err
	}
	return func() { stopped = true }, nil
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.heap.Len() }

// RunUntil advances the clock, dispatching due events in order, until
// the clock reaches deadline. Events scheduled exactly at the deadline
// are dispatched.
func (q *EventQueue) RunUntil(deadline time.Duration) error {
	if deadline < q.clock.Now() {
		return fmt.Errorf("simtime: deadline %v before now %v", deadline, q.clock.Now())
	}
	for q.heap.Len() > 0 {
		next := q.heap[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&q.heap)
		if next.at > q.clock.Now() {
			if err := q.clock.Advance(next.at - q.clock.Now()); err != nil {
				return err
			}
		}
		next.fn(q.clock.Now())
	}
	if deadline > q.clock.Now() {
		return q.clock.Advance(deadline - q.clock.Now())
	}
	return nil
}

// Step advances exactly one Tick, dispatching any events due at or
// before the new time.
func (q *EventQueue) Step() error {
	return q.RunUntil(q.clock.Now() + Tick)
}
