package sched

import (
	"fmt"
	"time"

	"repro/internal/vmm"
	"repro/internal/workload"
)

// Table4Result is the concurrent-vs-sequential experiment of Table 4: a
// CPU-intensive job (CH3D) and an I/O-intensive job (PostMark) run on
// one machine either together or back to back.
type Table4Result struct {
	ConcurrentCH3D     time.Duration
	ConcurrentPostMark time.Duration
	// ConcurrentMakespan is the time to finish both jobs concurrently.
	ConcurrentMakespan time.Duration
	SequentialCH3D     time.Duration
	SequentialPostMark time.Duration
	// SequentialTotal is the time to finish both jobs back to back.
	SequentialTotal time.Duration
}

// Speedup returns the relative reduction of total completion time from
// running concurrently (positive when concurrency wins).
func (r Table4Result) Speedup() float64 {
	if r.SequentialTotal == 0 {
		return 0
	}
	return 1 - r.ConcurrentMakespan.Seconds()/r.SequentialTotal.Seconds()
}

// ch3dWorkSeconds sizes CH3D so its standalone run approximates the
// paper's 488 s.
const ch3dWorkSeconds = 480

func table4Jobs(seed int64) (vmm.Job, vmm.Job, error) {
	ch3d, err := workload.NewCH3D(ch3dWorkSeconds, workload.Config{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	post, err := workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Seed: seed + 1})
	if err != nil {
		return nil, nil, err
	}
	return ch3d, post, nil
}

// runJobsOnOneVM runs the given jobs together in one uniprocessor VM on
// one host and returns each job's completion time.
func runJobsOnOneVM(seed int64, jobs ...vmm.Job) (map[string]time.Duration, error) {
	cluster := vmm.NewCluster()
	host := vmm.NewHost(vmm.HostConfig{Name: "host", CPUs: 2})
	if err := cluster.AddHost(host); err != nil {
		return nil, err
	}
	vm := vmm.NewVM(vmm.VMConfig{Name: "vm1", VCPUs: 1, Seed: seed})
	for _, j := range jobs {
		vm.AddJob(j)
	}
	if err := host.AddVM(vm); err != nil {
		return nil, err
	}
	if err := cluster.RunUntilAllDone(4 * time.Hour); err != nil {
		return nil, fmt.Errorf("sched: table 4 run: %w", err)
	}
	return cluster.CompletionTimes(), nil
}

// ConcurrentVsSequential runs the Table 4 experiment.
func ConcurrentVsSequential(seed int64) (*Table4Result, error) {
	// Concurrent: both jobs share the machine.
	ch3d, post, err := table4Jobs(seed)
	if err != nil {
		return nil, err
	}
	concurrent, err := runJobsOnOneVM(seed, ch3d, post)
	if err != nil {
		return nil, err
	}

	// Sequential: each job alone on the same machine configuration.
	ch3dSolo, postSolo, err := table4Jobs(seed)
	if err != nil {
		return nil, err
	}
	seq1, err := runJobsOnOneVM(seed, ch3dSolo)
	if err != nil {
		return nil, err
	}
	seq2, err := runJobsOnOneVM(seed, postSolo)
	if err != nil {
		return nil, err
	}

	res := &Table4Result{
		ConcurrentCH3D:     concurrent[ch3d.Name()],
		ConcurrentPostMark: concurrent[post.Name()],
		SequentialCH3D:     seq1[ch3dSolo.Name()],
		SequentialPostMark: seq2[postSolo.Name()],
	}
	res.ConcurrentMakespan = res.ConcurrentCH3D
	if res.ConcurrentPostMark > res.ConcurrentMakespan {
		res.ConcurrentMakespan = res.ConcurrentPostMark
	}
	res.SequentialTotal = res.SequentialCH3D + res.SequentialPostMark
	return res, nil
}
