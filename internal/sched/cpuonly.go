package sched

import "fmt"

// The paper argues that class knowledge "conveys more information than
// CPU load in isolation" (Section 1). CPULoadOnlyExpectation quantifies
// that: a scheduler that knows only each job's CPU demand can spread
// the CPU-heavy S jobs one per VM, but cannot distinguish the
// I/O-intensive P jobs from the network-intensive N jobs, so it places
// them arbitrarily. Its expected system throughput is the
// multiplicity-weighted average over exactly the schedules consistent
// with its knowledge — between the random scheduler and the full
// class-aware scheduler.

// cpuSpreadConsistent reports whether a schedule places exactly one
// CPU-heavy (S) job on each VM — the only constraint a CPU-load-only
// scheduler can enforce.
func cpuSpreadConsistent(s Schedule) bool {
	for _, g := range s {
		var nS int
		for _, k := range g {
			if k == KindS {
				nS++
			}
		}
		if nS != 1 {
			return false
		}
	}
	return true
}

// CPULoadOnlyExpectation computes the expected system throughput of the
// CPU-load-only scheduler from full Figure-4 results, weighting the
// consistent schedules by their assignment multiplicities.
func CPULoadOnlyExpectation(results []*Result) (float64, error) {
	if len(results) == 0 {
		return 0, fmt.Errorf("sched: no results")
	}
	_, weights := Enumerate()
	var weightedSum, weightTotal float64
	for _, r := range results {
		if !cpuSpreadConsistent(r.Schedule) {
			continue
		}
		w := float64(weights[r.Schedule])
		weightedSum += w * r.SystemThroughput
		weightTotal += w
	}
	if weightTotal == 0 {
		return 0, fmt.Errorf("sched: results contain no CPU-spread-consistent schedule")
	}
	return weightedSum / weightTotal, nil
}

// CPUSpreadSchedules returns the schedules a CPU-load-only scheduler
// might produce, in Enumerate order.
func CPUSpreadSchedules() []Schedule {
	schedules, _ := Enumerate()
	var out []Schedule
	for _, s := range schedules {
		if cpuSpreadConsistent(s) {
			out = append(out, s)
		}
	}
	return out
}
