package sched

import (
	"fmt"

	"repro/internal/placement"
)

// ClassAware is the scheduler the paper proposes: given the class of
// every job (learned by the application classifier over historical
// runs), it spreads jobs of the same class across VMs so that each VM
// mixes classes and contends on no single resource. The dealing
// algorithm lives in internal/placement (placement.DealByClass) so the
// Figure 4 simulation and the live placement service share one
// implementation.
func ClassAware(jobs []Kind, vms, slotsPerVM int) ([][]Kind, error) {
	return placement.DealByClass(jobs, vms, slotsPerVM, kindRank)
}

// ClassAwareSchedule runs the class-aware scheduler on the Figure 4
// workload (three jobs each of S, P, N onto three VMs) and returns the
// resulting schedule — always the all-mixed SPN placement.
func ClassAwareSchedule() (Schedule, error) {
	jobs := []Kind{
		KindS, KindS, KindS,
		KindP, KindP, KindP,
		KindN, KindN, KindN,
	}
	placement, err := ClassAware(jobs, 3, 3)
	if err != nil {
		return Schedule{}, err
	}
	var s Schedule
	for i, g := range placement {
		if len(g) != 3 {
			return Schedule{}, fmt.Errorf("sched: VM %d has %d jobs, want 3", i, len(g))
		}
		s[i] = Group{g[0], g[1], g[2]}
	}
	return s.Canonical(), nil
}
