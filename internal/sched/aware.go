package sched

import (
	"fmt"
	"sort"
)

// ClassAware is the scheduler the paper proposes: given the class of
// every job (learned by the application classifier over historical
// runs), it spreads jobs of the same class across VMs so that each VM
// mixes classes and contends on no single resource. Jobs are grouped by
// kind and dealt round-robin to the VMs.
func ClassAware(jobs []Kind, vms, slotsPerVM int) ([][]Kind, error) {
	if vms <= 0 || slotsPerVM <= 0 {
		return nil, fmt.Errorf("sched: need positive vms and slots, got %d x %d", vms, slotsPerVM)
	}
	if len(jobs) != vms*slotsPerVM {
		return nil, fmt.Errorf("sched: %d jobs do not fill %d VMs x %d slots", len(jobs), vms, slotsPerVM)
	}
	// Deal per class, largest class first, round-robin over VMs,
	// skipping full VMs.
	byKind := map[Kind][]Kind{}
	for _, j := range jobs {
		byKind[j] = append(byKind[j], j)
	}
	kinds := make([]Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if len(byKind[kinds[i]]) != len(byKind[kinds[j]]) {
			return len(byKind[kinds[i]]) > len(byKind[kinds[j]])
		}
		return kindRank(kinds[i]) < kindRank(kinds[j])
	})
	placement := make([][]Kind, vms)
	next := 0
	for _, k := range kinds {
		for range byKind[k] {
			placed := false
			for tries := 0; tries < vms; tries++ {
				vm := (next + tries) % vms
				if len(placement[vm]) < slotsPerVM {
					placement[vm] = append(placement[vm], k)
					next = (vm + 1) % vms
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("sched: internal error, no free slot")
			}
		}
	}
	return placement, nil
}

// ClassAwareSchedule runs the class-aware scheduler on the Figure 4
// workload (three jobs each of S, P, N onto three VMs) and returns the
// resulting schedule — always the all-mixed SPN placement.
func ClassAwareSchedule() (Schedule, error) {
	jobs := []Kind{
		KindS, KindS, KindS,
		KindP, KindP, KindP,
		KindN, KindN, KindN,
	}
	placement, err := ClassAware(jobs, 3, 3)
	if err != nil {
		return Schedule{}, err
	}
	var s Schedule
	for i, g := range placement {
		if len(g) != 3 {
			return Schedule{}, fmt.Errorf("sched: VM %d has %d jobs, want 3", i, len(g))
		}
		s[i] = Group{g[0], g[1], g[2]}
	}
	return s.Canonical(), nil
}
