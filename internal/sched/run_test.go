package sched

import (
	"testing"
	"time"
)

func TestRunSPNSchedule(t *testing.T) {
	res, err := Run(SPN(), Config{Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Elapsed) != 9 {
		t.Fatalf("elapsed for %d jobs, want 9", len(res.Elapsed))
	}
	if res.SystemThroughput <= 0 {
		t.Error("non-positive system throughput")
	}
	var kindSum float64
	for _, k := range Kinds() {
		kindSum += res.KindThroughput[k]
	}
	if diff := kindSum - res.SystemThroughput; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("kind throughputs sum %v != system %v", kindSum, res.SystemThroughput)
	}
}

func TestRunRejectsInvalidSchedule(t *testing.T) {
	bad := Schedule{
		{KindS, KindS, KindS},
		{KindS, KindS, KindS},
		{KindS, KindS, KindS},
	}
	if _, err := Run(bad, Config{}); err == nil {
		t.Fatal("invalid schedule: want error")
	}
}

// TestFigure4SPNWins is the headline scheduling result: the class-aware
// schedule must achieve the highest system throughput of all ten, with a
// double-digit-percent margin over the weighted average a random
// scheduler achieves in expectation (the paper measured +22.11%).
func TestFigure4SPNWins(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	results, weighted, err := RunAll(Config{Seed: 3})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	best := Best(results)
	if best.Schedule != SPN() {
		t.Errorf("best schedule = %s (%.0f jobs/day), want SPN", best.Schedule, best.SystemThroughput)
	}
	margin := best.SystemThroughput/weighted - 1
	t.Logf("SPN throughput %.0f jobs/day, weighted average %.0f, margin %.2f%%",
		best.SystemThroughput, weighted, 100*margin)
	if margin < 0.08 {
		t.Errorf("SPN margin over weighted average = %.2f%%, want >= 8%% (paper: 22.11%%)", 100*margin)
	}
	// Same-class schedules must rank at the bottom.
	var worst *Result
	for _, r := range results {
		if worst == nil || r.SystemThroughput < worst.SystemThroughput {
			worst = r
		}
	}
	allSame := Schedule{
		{KindS, KindS, KindS},
		{KindP, KindP, KindP},
		{KindN, KindN, KindN},
	}.Canonical()
	if worst.Schedule != allSame {
		t.Errorf("worst schedule = %s, want the fully segregated %s", worst.Schedule, allSame)
	}
}

// TestFigure5AppThroughput checks the per-application shape: under SPN
// every kind beats its all-schedule average, and the per-kind maxima
// are reached by sub-schedules that pair the app with non-competing
// classes (the paper observed S's max under (SSN) and N's under (PPN)).
func TestFigure5AppThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	results, _, err := RunAll(Config{Seed: 3})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	stats, err := AppThroughputStats(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		st := stats[k]
		if st.Min > st.Avg || st.Avg > st.Max {
			t.Errorf("%c: min %.0f / avg %.0f / max %.0f not ordered", k, st.Min, st.Avg, st.Max)
		}
		if st.SPN < st.Avg {
			t.Errorf("%c: SPN throughput %.0f below average %.0f", k, st.SPN, st.Avg)
		}
		t.Logf("%c: min=%.0f avg=%.0f max=%.0f spn=%.0f (+%.1f%% over avg)",
			k, st.Min, st.Avg, st.Max, st.SPN, 100*(st.SPN/st.Avg-1))
	}
}

func TestAppThroughputStatsRequiresSPN(t *testing.T) {
	r, err := Run(Schedule{
		{KindS, KindS, KindS},
		{KindP, KindP, KindP},
		{KindN, KindN, KindN},
	}.Canonical(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppThroughputStats([]*Result{r}); err == nil {
		t.Error("results without SPN: want error")
	}
	if _, err := AppThroughputStats(nil); err == nil {
		t.Error("empty results: want error")
	}
}

// TestTable4ConcurrentBeatsSequential reproduces Table 4: running the
// CPU-intensive and I/O-intensive jobs concurrently finishes both
// sooner than running them back to back, while each individual job runs
// somewhat slower than standalone.
func TestTable4ConcurrentBeatsSequential(t *testing.T) {
	res, err := ConcurrentVsSequential(3)
	if err != nil {
		t.Fatalf("ConcurrentVsSequential: %v", err)
	}
	t.Logf("concurrent: CH3D %v, PostMark %v (makespan %v); sequential: CH3D %v + PostMark %v = %v",
		res.ConcurrentCH3D, res.ConcurrentPostMark, res.ConcurrentMakespan,
		res.SequentialCH3D, res.SequentialPostMark, res.SequentialTotal)
	if res.ConcurrentMakespan >= res.SequentialTotal {
		t.Errorf("concurrent makespan %v not better than sequential total %v",
			res.ConcurrentMakespan, res.SequentialTotal)
	}
	// Contention slows the individual jobs (the paper: 488->613 s and
	// 264->310 s).
	if res.ConcurrentCH3D < res.SequentialCH3D {
		t.Errorf("CH3D faster under contention: %v < %v", res.ConcurrentCH3D, res.SequentialCH3D)
	}
	if res.ConcurrentPostMark < res.SequentialPostMark {
		t.Errorf("PostMark faster under contention: %v < %v", res.ConcurrentPostMark, res.SequentialPostMark)
	}
	// CH3D standalone approximates the paper's 488 s.
	if res.SequentialCH3D < 300*time.Second || res.SequentialCH3D > 700*time.Second {
		t.Errorf("standalone CH3D = %v, want roughly the paper's 488 s", res.SequentialCH3D)
	}
	if res.Speedup() <= 0 {
		t.Errorf("Speedup = %v, want positive", res.Speedup())
	}
}
