package sched

import (
	"fmt"
	"sort"

	"repro/internal/appclass"
)

// The paper's introduction motivates stage detection with process
// migration: "with process migration techniques it is possible to
// migrate an application during its execution for load balancing" when
// a multi-stage application's current stage starts competing with its
// VM neighbours. AdviseMigrations is that consumer: given each VM's
// currently active stage classes (from classify.DetectStages or the
// online classifier), it proposes moves that reduce same-class
// co-location.

// Placement maps VM name to the current stage classes of its jobs.
type Placement map[string][]appclass.Class

// Migration is one proposed move. When SwapWith is non-empty the move
// is an exchange: a SwapWith-class job travels from To back to From in
// the same step, which lets the advisor fix placements on fully packed
// VMs.
type Migration struct {
	// Class is the class of the job to move.
	Class appclass.Class
	// From and To are VM names.
	From, To string
	// SwapWith, when set, is the class of the job moved back from To.
	SwapWith appclass.Class
}

// collisions scores a placement: one point for every same-class pair
// beyond the first job of a class on a VM.
func collisions(p Placement) int {
	var score int
	for _, classes := range p {
		counts := map[appclass.Class]int{}
		for _, c := range classes {
			counts[c]++
		}
		for _, n := range counts {
			if n > 1 {
				score += n - 1
			}
		}
	}
	return score
}

// AdviseMigrations proposes migrations (greedy, best-improvement) that
// reduce class collisions without putting more than slotsPerVM jobs on
// any VM. It returns the moves in application order; applying them in
// order to the input placement yields the advised placement. Idle-class
// jobs are never moved (they contend with nothing).
func AdviseMigrations(p Placement, slotsPerVM int) ([]Migration, error) {
	if slotsPerVM <= 0 {
		return nil, fmt.Errorf("sched: slotsPerVM must be positive, got %d", slotsPerVM)
	}
	// Work on a deep copy.
	cur := make(Placement, len(p))
	vms := make([]string, 0, len(p))
	for vm, classes := range p {
		for _, c := range classes {
			if !appclass.Valid(c) {
				return nil, fmt.Errorf("sched: invalid class %q on VM %q", c, vm)
			}
		}
		if len(classes) > slotsPerVM {
			return nil, fmt.Errorf("sched: VM %q has %d jobs, capacity %d", vm, len(classes), slotsPerVM)
		}
		cur[vm] = append([]appclass.Class(nil), classes...)
		vms = append(vms, vm)
	}
	sort.Strings(vms)

	var moves []Migration
	// Bounded iteration: each accepted operation strictly reduces the
	// collision score, which is at most the total job count.
	for iter := 0; iter < 1+len(vms)*slotsPerVM; iter++ {
		best := Migration{}
		bestGain := 0
		baseline := collisions(cur)
		for _, from := range vms {
			counts := map[appclass.Class]int{}
			for _, c := range cur[from] {
				counts[c]++
			}
			for c, n := range counts {
				if n < 2 || c == appclass.Idle {
					continue // only colliding, non-idle jobs move
				}
				for _, to := range vms {
					if to == from {
						continue
					}
					// Plain move into free capacity.
					if len(cur[to]) < slotsPerVM {
						m := Migration{Class: c, From: from, To: to}
						if gain := baseline - scoreAfter(cur, m); better(gain, m, bestGain, best) {
							best, bestGain = m, gain
						}
					}
					// Swap with each distinct class on the target.
					seen := map[appclass.Class]bool{}
					for _, d := range cur[to] {
						if d == c || seen[d] {
							continue
						}
						seen[d] = true
						m := Migration{Class: c, From: from, To: to, SwapWith: d}
						if gain := baseline - scoreAfter(cur, m); better(gain, m, bestGain, best) {
							best, bestGain = m, gain
						}
					}
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		applyOp(cur, best)
		moves = append(moves, best)
	}
	return moves, nil
}

// better prefers strictly larger gains, breaking ties deterministically
// by target VM name.
func better(gain int, m Migration, bestGain int, best Migration) bool {
	if gain <= 0 {
		return false
	}
	if gain != bestGain {
		return gain > bestGain
	}
	return best.From == "" || m.To < best.To
}

// scoreAfter evaluates the collision score of applying m, then undoes
// it.
func scoreAfter(p Placement, m Migration) int {
	applyOp(p, m)
	score := collisions(p)
	applyOp(p, m.inverse())
	return score
}

func (m Migration) inverse() Migration {
	return Migration{Class: m.Class, From: m.To, To: m.From, SwapWith: m.SwapWith}
}

func applyOp(p Placement, m Migration) {
	removeOne(p, m.From, m.Class)
	p[m.To] = append(p[m.To], m.Class)
	if m.SwapWith != "" {
		removeOne(p, m.To, m.SwapWith)
		p[m.From] = append(p[m.From], m.SwapWith)
	}
}

func removeOne(p Placement, vm string, c appclass.Class) {
	src := p[vm]
	for i, x := range src {
		if x == c {
			p[vm] = append(append([]appclass.Class(nil), src[:i]...), src[i+1:]...)
			return
		}
	}
}

// Apply executes a list of migrations on a placement, returning the
// resulting placement (the input is not modified).
func Apply(p Placement, moves []Migration) (Placement, error) {
	out := make(Placement, len(p))
	for vm, classes := range p {
		out[vm] = append([]appclass.Class(nil), classes...)
	}
	for _, m := range moves {
		if !contains(out[m.From], m.Class) {
			return nil, fmt.Errorf("sched: migration %v: no %s job on %s", m, m.Class, m.From)
		}
		if m.SwapWith != "" && !contains(out[m.To], m.SwapWith) {
			return nil, fmt.Errorf("sched: migration %v: no %s job on %s to swap back", m, m.SwapWith, m.To)
		}
		applyOp(out, m)
	}
	return out, nil
}

func contains(classes []appclass.Class, c appclass.Class) bool {
	for _, x := range classes {
		if x == c {
			return true
		}
	}
	return false
}

// Collisions exposes the collision score for reports and tests.
func Collisions(p Placement) int { return collisions(p) }
