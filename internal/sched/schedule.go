// Package sched reproduces the paper's scheduling experiments
// (Section 5.2): nine jobs — three instances each of SPECseis96 (S,
// CPU-intensive), PostMark (P, I/O-intensive) and NetPIPE (N,
// network-intensive) — are placed on three virtual machines, three jobs
// per VM. There are exactly ten distinct schedules (Figure 4); a
// class-aware scheduler always picks the all-mixed {(SPN),(SPN),(SPN)}
// placement, which maximizes system throughput, while a class-oblivious
// scheduler picks among the ten at random. The package also contains
// the concurrent-vs-sequential experiment of Table 4.
package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies a job type in the Figure 4 experiment.
type Kind byte

// The three job kinds, with the paper's letters.
const (
	KindS Kind = 'S' // SPECseis96, CPU-intensive
	KindP Kind = 'P' // PostMark, I/O-intensive
	KindN Kind = 'N' // NetPIPE, network-intensive
)

// Kinds returns the three kinds in canonical order.
func Kinds() []Kind { return []Kind{KindS, KindP, KindN} }

// kindRank orders kinds S < P < N for canonical forms.
func kindRank(k Kind) int {
	switch k {
	case KindS:
		return 0
	case KindP:
		return 1
	case KindN:
		return 2
	default:
		return 3
	}
}

// Group is the multiset of three jobs placed on one VM, kept in
// canonical (S-before-P-before-N) order.
type Group [3]Kind

// canonical sorts the group into canonical order.
func (g Group) canonical() Group {
	s := g[:]
	sort.Slice(s, func(i, j int) bool { return kindRank(s[i]) < kindRank(s[j]) })
	return g
}

// String renders the group like the paper: "(SPN)".
func (g Group) String() string {
	return "(" + string([]byte{byte(g[0]), byte(g[1]), byte(g[2])}) + ")"
}

// Schedule assigns one group to each of the three VMs. The canonical
// form sorts the groups, so schedules that differ only by VM naming are
// identical — matching the paper's ten unordered schedules.
type Schedule [3]Group

// Canonical returns the schedule with each group canonicalized and the
// groups sorted.
func (s Schedule) Canonical() Schedule {
	for i := range s {
		s[i] = s[i].canonical()
	}
	groups := s[:]
	sort.Slice(groups, func(i, j int) bool {
		for k := 0; k < 3; k++ {
			if groups[i][k] != groups[j][k] {
				return kindRank(groups[i][k]) < kindRank(groups[j][k])
			}
		}
		return false
	})
	return s
}

// String renders the schedule like the paper: "{(SSS),(PPP),(NNN)}".
func (s Schedule) String() string {
	parts := make([]string, 3)
	for i, g := range s {
		parts[i] = g.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SPN is the class-aware schedule: one job of each class per VM
// (schedule 10 in Figure 4).
func SPN() Schedule {
	g := Group{KindS, KindP, KindN}
	return Schedule{g, g, g}.Canonical()
}

// Enumerate returns every distinct schedule of {3×S, 3×P, 3×N} onto
// three unordered VMs of three jobs each — the paper's ten schedules —
// along with each schedule's multiplicity: the number of ordered
// (VM-labelled) class assignments that canonicalize to it, which weights
// the random class-oblivious scheduler's expectation.
func Enumerate() ([]Schedule, map[Schedule]int) {
	counts := make(map[Schedule]int)
	// Assign a kind to each of 9 labelled slots (3 per VM) such that
	// each kind appears exactly three times; canonicalize and count.
	var slots [9]Kind
	var fill func(i int, remS, remP, remN int)
	fill = func(i, remS, remP, remN int) {
		if i == 9 {
			s := Schedule{
				{slots[0], slots[1], slots[2]},
				{slots[3], slots[4], slots[5]},
				{slots[6], slots[7], slots[8]},
			}.Canonical()
			counts[s]++
			return
		}
		if remS > 0 {
			slots[i] = KindS
			fill(i+1, remS-1, remP, remN)
		}
		if remP > 0 {
			slots[i] = KindP
			fill(i+1, remS, remP-1, remN)
		}
		if remN > 0 {
			slots[i] = KindN
			fill(i+1, remS, remP, remN-1)
		}
	}
	fill(0, 3, 3, 3)

	schedules := make([]Schedule, 0, len(counts))
	for s := range counts {
		schedules = append(schedules, s)
	}
	sort.Slice(schedules, func(i, j int) bool {
		return schedules[i].String() < schedules[j].String()
	})
	return schedules, counts
}

// Validate checks that a schedule uses exactly three of each kind.
func (s Schedule) Validate() error {
	counts := map[Kind]int{}
	for _, g := range s {
		for _, k := range g {
			counts[k]++
		}
	}
	for _, k := range Kinds() {
		if counts[k] != 3 {
			return fmt.Errorf("sched: schedule %s has %d %c jobs, want 3", s, counts[k], k)
		}
	}
	if len(counts) != 3 {
		return fmt.Errorf("sched: schedule %s contains unknown kinds", s)
	}
	return nil
}
