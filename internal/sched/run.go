package sched

import (
	"fmt"
	"time"

	"repro/internal/vmm"
	"repro/internal/workload"
)

// JobBuilder creates one job instance of a kind.
type JobBuilder func(name string, seed int64) (vmm.Job, error)

// Config parameterizes the scheduling experiments. The zero value uses
// the paper's job types and testbed topology.
type Config struct {
	// Seed controls all randomness.
	Seed int64
	// Builders maps each kind to its job constructor. Defaults to
	// SPECseis96 small (S), PostMark local (P), NetPIPE (N).
	Builders map[Kind]JobBuilder
	// MaxRun caps one schedule's simulation.
	MaxRun time.Duration
}

func (c Config) withDefaults() Config {
	if c.Builders == nil {
		c.Builders = map[Kind]JobBuilder{
			KindS: func(name string, seed int64) (vmm.Job, error) {
				return workload.NewSPECseis(workload.SPECseisSmall, workload.Config{Name: name, Seed: seed})
			},
			KindP: func(name string, seed int64) (vmm.Job, error) {
				return workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Name: name, Seed: seed})
			},
			KindN: func(name string, seed int64) (vmm.Job, error) {
				return workload.NewNetPIPE(0, workload.Config{Name: name, Seed: seed})
			},
		}
	}
	if c.MaxRun == 0 {
		c.MaxRun = 12 * time.Hour
	}
	return c
}

// Result is the measured outcome of running one schedule.
type Result struct {
	// Schedule is the placement that ran.
	Schedule Schedule
	// Elapsed maps each job instance to its completion time.
	Elapsed map[string]time.Duration
	// SystemThroughput is the paper's metric: total jobs per day,
	// summing each job's rate of 86400s / elapsed.
	SystemThroughput float64
	// KindThroughput is the per-application-kind jobs-per-day total
	// (Figure 5's per-application series).
	KindThroughput map[Kind]float64
}

// newTestbedCluster builds the Figure 4 topology: VM1 on the dual
// 1.8 GHz host, VM2-VM4 on the dual 2.4 GHz host; VM4 hosts the NetPIPE
// server side. VMs are uniprocessor GSX-style guests with 256 MB.
func newTestbedCluster(seed int64) (*vmm.Cluster, []*vmm.VM, error) {
	cluster := vmm.NewCluster()
	hostA := vmm.NewHost(vmm.HostConfig{Name: "hostA", CPUs: 2})
	hostB := vmm.NewHost(vmm.HostConfig{Name: "hostB", CPUs: 2.66})
	if err := cluster.AddHost(hostA); err != nil {
		return nil, nil, err
	}
	if err := cluster.AddHost(hostB); err != nil {
		return nil, nil, err
	}
	var vms []*vmm.VM
	for i := 1; i <= 3; i++ {
		vm := vmm.NewVM(vmm.VMConfig{Name: fmt.Sprintf("vm%d", i), VCPUs: 2, Seed: seed + int64(i)})
		host := hostA
		if i > 1 {
			host = hostB
		}
		if err := host.AddVM(vm); err != nil {
			return nil, nil, err
		}
		vms = append(vms, vm)
	}
	vm4 := vmm.NewVM(vmm.VMConfig{Name: "vm4", VCPUs: 1, Seed: seed + 4})
	server, err := workload.NewNetPIPEServer(0, workload.Config{Seed: seed + 4})
	if err != nil {
		return nil, nil, err
	}
	vm4.AddJob(server)
	if err := hostB.AddVM(vm4); err != nil {
		return nil, nil, err
	}
	return cluster, vms, nil
}

// Run executes one schedule on the testbed and measures throughput.
func Run(s Schedule, cfg Config) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cluster, vms, err := newTestbedCluster(cfg.Seed)
	if err != nil {
		return nil, err
	}
	type placed struct {
		name string
		kind Kind
	}
	var jobs []placed
	instance := map[Kind]int{}
	for vmIdx, g := range s {
		for _, k := range g {
			instance[k]++
			name := fmt.Sprintf("%c%d", k, instance[k])
			build, ok := cfg.Builders[k]
			if !ok {
				return nil, fmt.Errorf("sched: no builder for kind %c", k)
			}
			job, err := build(name, cfg.Seed+int64(100*instance[k])+int64(k))
			if err != nil {
				return nil, fmt.Errorf("sched: build %s: %w", name, err)
			}
			vms[vmIdx].AddJob(job)
			jobs = append(jobs, placed{name: name, kind: k})
		}
	}

	// The NetPIPE server loops for its configured duration; run until
	// the nine scheduled jobs (not the server) complete.
	deadline := cfg.MaxRun
	for cluster.Now() < deadline {
		allDone := true
		for _, j := range jobs {
			if _, ok := cluster.CompletionTime(j.name); !ok {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		step := time.Minute
		if remaining := deadline - cluster.Now(); remaining < step {
			step = remaining
		}
		if err := cluster.RunFor(step); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Schedule:       s,
		Elapsed:        make(map[string]time.Duration, len(jobs)),
		KindThroughput: make(map[Kind]float64, 3),
	}
	const day = 24 * 60 * 60.0
	for _, j := range jobs {
		done, ok := cluster.CompletionTime(j.name)
		if !ok {
			return nil, fmt.Errorf("sched: job %s did not finish schedule %s within %v", j.name, s, cfg.MaxRun)
		}
		res.Elapsed[j.name] = done
		rate := day / done.Seconds()
		res.SystemThroughput += rate
		res.KindThroughput[j.kind] += rate
	}
	return res, nil
}

// RunAll executes all ten schedules (Figure 4), returning results in
// Enumerate order plus the multiplicity-weighted average system
// throughput a random class-oblivious scheduler would achieve in
// expectation.
func RunAll(cfg Config) ([]*Result, float64, error) {
	schedules, weights := Enumerate()
	results := make([]*Result, 0, len(schedules))
	var weightedSum, weightTotal float64
	for _, s := range schedules {
		r, err := Run(s, cfg)
		if err != nil {
			return nil, 0, err
		}
		results = append(results, r)
		w := float64(weights[s])
		weightedSum += w * r.SystemThroughput
		weightTotal += w
	}
	return results, weightedSum / weightTotal, nil
}

// Best returns the result with the highest system throughput.
func Best(results []*Result) *Result {
	var best *Result
	for _, r := range results {
		if best == nil || r.SystemThroughput > best.SystemThroughput {
			best = r
		}
	}
	return best
}

// KindStats summarizes Figure 5: per-kind minimum, maximum and average
// throughput across all schedules, plus the value under the SPN
// schedule.
type KindStats struct {
	Min, Max, Avg, SPN float64
}

// AppThroughputStats computes Figure 5's series from RunAll results.
func AppThroughputStats(results []*Result) (map[Kind]KindStats, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("sched: no results")
	}
	out := make(map[Kind]KindStats, 3)
	spn := SPN()
	for _, k := range Kinds() {
		st := KindStats{Min: results[0].KindThroughput[k], Max: results[0].KindThroughput[k]}
		var sum float64
		var spnSeen bool
		for _, r := range results {
			v := r.KindThroughput[k]
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
			sum += v
			if r.Schedule == spn {
				st.SPN = v
				spnSeen = true
			}
		}
		if !spnSeen {
			return nil, fmt.Errorf("sched: results do not include the SPN schedule")
		}
		st.Avg = sum / float64(len(results))
		out[k] = st
	}
	return out, nil
}
