package sched

import (
	"math/rand"
	"testing"

	"repro/internal/appclass"
)

func TestAdviseMigrationsResolvesCollisions(t *testing.T) {
	p := Placement{
		"vm1": {appclass.CPU, appclass.CPU, appclass.CPU},
		"vm2": {appclass.IO, appclass.IO, appclass.IO},
		"vm3": {appclass.Net, appclass.Net, appclass.Net},
	}
	moves, err := AdviseMigrations(p, 3)
	if err != nil {
		t.Fatalf("AdviseMigrations: %v", err)
	}
	after, err := Apply(p, moves)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := Collisions(after); got != 0 {
		t.Errorf("collisions after migration = %d (placement %v, moves %v)", got, after, moves)
	}
	// Original placement untouched.
	if len(p["vm1"]) != 3 {
		t.Error("AdviseMigrations/Apply mutated the input")
	}
}

func TestAdviseMigrationsNoopWhenMixed(t *testing.T) {
	p := Placement{
		"vm1": {appclass.CPU, appclass.IO, appclass.Net},
		"vm2": {appclass.CPU, appclass.IO, appclass.Net},
	}
	moves, err := AdviseMigrations(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("mixed placement advised %v", moves)
	}
}

func TestAdviseMigrationsSwapsWhenTargetsFull(t *testing.T) {
	p := Placement{
		"vm1": {appclass.CPU, appclass.CPU},
		"vm2": {appclass.IO, appclass.Net},
	}
	moves, err := AdviseMigrations(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].SwapWith == "" {
		t.Fatalf("want one swap, got %v", moves)
	}
	after, err := Apply(p, moves)
	if err != nil {
		t.Fatal(err)
	}
	if Collisions(after) != 0 {
		t.Errorf("collisions after swap = %d (%v)", Collisions(after), after)
	}
	// Capacity still respected on both VMs.
	for vm, cs := range after {
		if len(cs) != 2 {
			t.Errorf("VM %s has %d jobs after swap", vm, len(cs))
		}
	}
}

func TestAdviseMigrationsIgnoresIdle(t *testing.T) {
	p := Placement{
		"vm1": {appclass.Idle, appclass.Idle},
		"vm2": {},
	}
	moves, err := AdviseMigrations(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("idle jobs advised to move: %v", moves)
	}
}

func TestAdviseMigrationsValidation(t *testing.T) {
	if _, err := AdviseMigrations(Placement{}, 0); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := AdviseMigrations(Placement{"vm1": {appclass.Class("weird")}}, 3); err == nil {
		t.Error("invalid class: want error")
	}
	if _, err := AdviseMigrations(Placement{"vm1": {appclass.CPU, appclass.CPU}}, 1); err == nil {
		t.Error("over-capacity input: want error")
	}
}

func TestApplyRejectsImpossibleMove(t *testing.T) {
	p := Placement{"vm1": {appclass.CPU}, "vm2": {}}
	if _, err := Apply(p, []Migration{{Class: appclass.Net, From: "vm1", To: "vm2"}}); err == nil {
		t.Error("moving a job that is not there: want error")
	}
}

// Property: advised migrations never increase the collision score, never
// overfill a VM, and preserve the total number of jobs.
func TestAdviseMigrationsProperties(t *testing.T) {
	classes := []appclass.Class{appclass.CPU, appclass.IO, appclass.Net, appclass.Mem, appclass.Idle}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		vms := 2 + rng.Intn(4)
		cap := 2 + rng.Intn(3)
		p := Placement{}
		total := 0
		for i := 0; i < vms; i++ {
			name := string(rune('a' + i))
			n := rng.Intn(cap + 1)
			for j := 0; j < n; j++ {
				p[name] = append(p[name], classes[rng.Intn(len(classes))])
			}
			if p[name] == nil {
				p[name] = []appclass.Class{}
			}
			total += n
		}
		before := Collisions(p)
		moves, err := AdviseMigrations(p, cap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after, err := Apply(p, moves)
		if err != nil {
			t.Fatalf("trial %d apply: %v", trial, err)
		}
		if got := Collisions(after); got > before {
			t.Fatalf("trial %d: collisions rose %d -> %d (moves %v)", trial, before, got, moves)
		}
		var afterTotal int
		for vm, cs := range after {
			if len(cs) > cap {
				t.Fatalf("trial %d: VM %s overfilled: %v", trial, vm, cs)
			}
			afterTotal += len(cs)
		}
		if afterTotal != total {
			t.Fatalf("trial %d: job count changed %d -> %d", trial, total, afterTotal)
		}
	}
}
