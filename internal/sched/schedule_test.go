package sched

import (
	"strings"
	"testing"
)

func TestEnumerateProducesTenSchedules(t *testing.T) {
	schedules, weights := Enumerate()
	if len(schedules) != 10 {
		t.Fatalf("Enumerate = %d schedules, Figure 4 has 10", len(schedules))
	}
	// Every schedule from the paper's Figure 4 caption must appear.
	want := []string{
		"{(SSS),(PPP),(NNN)}",
		"{(SSS),(PPN),(PNN)}",
		"{(SSP),(SPP),(NNN)}",
		"{(SSP),(SPN),(PNN)}",
		"{(SSP),(SNN),(PPN)}",
		"{(SSN),(SPP),(PNN)}",
		"{(SSN),(SPN),(PPN)}",
		"{(SSN),(SNN),(PPP)}",
		"{(SPP),(SPN),(SNN)}",
		"{(SPN),(SPN),(SPN)}",
	}
	got := map[string]bool{}
	for _, s := range schedules {
		got[s.String()] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("schedule %s missing from enumeration (got %v)", w, got)
		}
	}
	// Weights: total ordered class assignments = 9!/(3!3!3!) = 1680.
	var total int
	for _, s := range schedules {
		if weights[s] <= 0 {
			t.Errorf("schedule %s has weight %d", s, weights[s])
		}
		total += weights[s]
	}
	if total != 1680 {
		t.Errorf("total weight = %d, want 1680", total)
	}
}

func TestScheduleCanonicalIdempotent(t *testing.T) {
	s := Schedule{
		{KindN, KindS, KindP},
		{KindP, KindP, KindP},
		{KindN, KindN, KindS},
	}
	c := s.Canonical()
	if c != c.Canonical() {
		t.Error("Canonical not idempotent")
	}
	// Group order and in-group order both canonicalized.
	if c.String() != "{(SPN),(SNN),(PPP)}" {
		t.Errorf("canonical form = %s", c)
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := SPN().Validate(); err != nil {
		t.Errorf("SPN invalid: %v", err)
	}
	bad := Schedule{
		{KindS, KindS, KindS},
		{KindS, KindP, KindP},
		{KindN, KindN, KindN},
	}
	if err := bad.Validate(); err == nil {
		t.Error("4 S jobs: want error")
	}
	unknown := Schedule{
		{Kind('X'), KindS, KindS},
		{KindP, KindP, KindP},
		{KindN, KindN, KindN},
	}
	if err := unknown.Validate(); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestSPNString(t *testing.T) {
	if got := SPN().String(); got != "{(SPN),(SPN),(SPN)}" {
		t.Errorf("SPN = %s", got)
	}
	if !strings.Contains(SPN().String(), "(SPN)") {
		t.Error("SPN rendering broken")
	}
}

func TestClassAwareSpreadsClasses(t *testing.T) {
	s, err := ClassAwareSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if s != SPN() {
		t.Errorf("class-aware schedule = %s, want %s", s, SPN())
	}
}

func TestClassAwareGeneric(t *testing.T) {
	// 4 jobs of one kind, 2 of another, onto 2 VMs of 3 slots.
	placement, err := ClassAware([]Kind{KindS, KindS, KindS, KindS, KindP, KindP}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Each VM should get 2 S and 1 P.
	for i, g := range placement {
		var s, p int
		for _, k := range g {
			switch k {
			case KindS:
				s++
			case KindP:
				p++
			}
		}
		if s != 2 || p != 1 {
			t.Errorf("VM %d = %v, want 2 S + 1 P", i, g)
		}
	}
}

func TestClassAwareValidation(t *testing.T) {
	if _, err := ClassAware([]Kind{KindS}, 0, 3); err == nil {
		t.Error("zero VMs: want error")
	}
	if _, err := ClassAware([]Kind{KindS, KindP}, 3, 3); err == nil {
		t.Error("job count mismatch: want error")
	}
}
