package sched

import "testing"

func TestCPUSpreadSchedules(t *testing.T) {
	got := CPUSpreadSchedules()
	// Of the ten schedules, exactly two place one S per VM:
	// {(SPN),(SPN),(SPN)} and {(SPP),(SPN),(SNN)}.
	if len(got) != 2 {
		t.Fatalf("CPU-spread schedules = %v, want 2", got)
	}
	want := map[string]bool{
		"{(SPN),(SPN),(SPN)}": true,
		"{(SPP),(SPN),(SNN)}": true,
	}
	for _, s := range got {
		if !want[s.String()] {
			t.Errorf("unexpected CPU-spread schedule %s", s)
		}
	}
}

func TestCPULoadOnlyExpectationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	results, randomAvg, err := RunAll(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly, err := CPULoadOnlyExpectation(results)
	if err != nil {
		t.Fatal(err)
	}
	spn := Best(results).SystemThroughput
	t.Logf("random=%.0f cpu-only=%.0f class-aware=%.0f", randomAvg, cpuOnly, spn)
	// The paper's information hierarchy: more knowledge, more throughput.
	if !(cpuOnly > randomAvg) {
		t.Errorf("CPU-load-only expectation %.0f not above random %.0f", cpuOnly, randomAvg)
	}
	if !(spn > cpuOnly) {
		t.Errorf("class-aware %.0f not above CPU-load-only %.0f", spn, cpuOnly)
	}
}

func TestCPULoadOnlyExpectationErrors(t *testing.T) {
	if _, err := CPULoadOnlyExpectation(nil); err == nil {
		t.Error("no results: want error")
	}
	seg := Schedule{
		{KindS, KindS, KindS},
		{KindP, KindP, KindP},
		{KindN, KindN, KindN},
	}.Canonical()
	r, err := Run(seg, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CPULoadOnlyExpectation([]*Result{r}); err == nil {
		t.Error("no consistent schedule in results: want error")
	}
}
