package testbed

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestProfileEntryEndToEnd(t *testing.T) {
	e, err := workload.Find("PostMark")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProfileEntry(e, 1)
	if err != nil {
		t.Fatalf("ProfileEntry: %v", err)
	}
	if res.Trace.Len() < 20 {
		t.Errorf("trace has %d snapshots, want dozens", res.Trace.Len())
	}
	if res.Trace.Schema().Len() != 33 {
		t.Errorf("trace schema has %d metrics, want the full 33", res.Trace.Schema().Len())
	}
	if res.Elapsed < 2*time.Minute || res.Elapsed > 10*time.Minute {
		t.Errorf("elapsed = %v, want a few minutes", res.Elapsed)
	}
	// The pool contains the peer VM's announcements too: more than
	// 33 * samples of the target alone.
	if res.PoolAnnouncements <= 33*res.Trace.Len() {
		t.Errorf("pool announcements = %d, want more than the target's %d (multicast pool)",
			res.PoolAnnouncements, 33*res.Trace.Len())
	}
	if !res.App.Done() {
		t.Error("application did not finish")
	}
}

func TestProfileEntryNetworkRunUsesPeer(t *testing.T) {
	e, err := workload.Find("Ettcp_train")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProfileEntry(e, 1)
	if err != nil {
		t.Fatalf("ProfileEntry: %v", err)
	}
	col, err := res.Trace.Column(metrics.BytesOut)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	if mean < 4e6 {
		t.Errorf("mean bytes_out = %v, want a saturated transfer", mean)
	}
}

func TestProfileEntryOpenEndedRunIsCapped(t *testing.T) {
	e, err := workload.Find("Idle_train")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProfileEntry(e, 1)
	if err != nil {
		t.Fatalf("ProfileEntry: %v", err)
	}
	if res.Elapsed > e.MaxRun {
		t.Errorf("elapsed %v exceeds cap %v", res.Elapsed, e.MaxRun)
	}
	if res.Trace.Len() < 10 {
		t.Errorf("idle trace has %d snapshots", res.Trace.Len())
	}
}

func TestProfileEntryDeterministicForSeed(t *testing.T) {
	e, err := workload.Find("CH3D")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ProfileEntry(e, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ProfileEntry(e, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace.Len() != r2.Trace.Len() || r1.Elapsed != r2.Elapsed {
		t.Fatalf("same seed, different runs: %d/%v vs %d/%v",
			r1.Trace.Len(), r1.Elapsed, r2.Trace.Len(), r2.Elapsed)
	}
	for i := 0; i < r1.Trace.Len(); i++ {
		a, b := r1.Trace.At(i), r2.Trace.At(i)
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				t.Fatalf("snapshot %d metric %d differs: %v vs %v", i, j, a.Values[j], b.Values[j])
			}
		}
	}
}

func TestProfileEntryCustomInterval(t *testing.T) {
	e, err := workload.Find("XSpim")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ProfileEntryOpts(e, 1, Options{SampleInterval: time.Second})
	if err != nil {
		t.Fatalf("1s interval: %v", err)
	}
	slow, err := ProfileEntryOpts(e, 1, Options{SampleInterval: 15 * time.Second})
	if err != nil {
		t.Fatalf("15s interval: %v", err)
	}
	if fast.Trace.Len() <= 3*slow.Trace.Len() {
		t.Errorf("1s trace %d samples vs 15s trace %d: want ~15x more", fast.Trace.Len(), slow.Trace.Len())
	}
}

func TestProfileEntryLossyTransport(t *testing.T) {
	e, err := workload.Find("PostMark")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ProfileEntry(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := ProfileEntryOpts(e, 1, Options{LossRate: 0.05})
	if err != nil {
		t.Fatalf("lossy run: %v", err)
	}
	if lossy.Trace.Len() >= clean.Trace.Len() {
		t.Errorf("lossy trace %d not smaller than clean %d", lossy.Trace.Len(), clean.Trace.Len())
	}
	if lossy.Trace.Len() < clean.Trace.Len()/10 {
		t.Errorf("lossy trace %d lost almost everything (clean %d)", lossy.Trace.Len(), clean.Trace.Len())
	}
}
