// Package testbed wires the full monitoring stack end to end for one
// profiling run, the way the paper's experiments did: the application
// executes in a dedicated VM on a shared physical host, a second VM
// hosts the benchmark's server side (when it has one), gmond agents on
// both VMs announce all 33 metrics on the multicast bus every five
// seconds, and the performance profiler filters the target VM's
// snapshots out of the subnet-wide data pool.
package testbed

import (
	"fmt"
	"time"

	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/profiler"
	"repro/internal/vmm"
	"repro/internal/workload"
)

// RunResult is the outcome of one profiled application run.
type RunResult struct {
	// Trace is the application performance data pool A(n×m) for the
	// target VM, filtered between t0 and t1.
	Trace *metrics.Trace
	// Elapsed is the application's execution time t1 - t0.
	Elapsed time.Duration
	// App is the workload instance that ran (phase history etc.).
	App *workload.App
	// PoolAnnouncements counts every announcement the profiler saw,
	// including the peer VM's — the raw multicast pool size.
	PoolAnnouncements int
}

// Options tune a profiling run beyond the paper's defaults.
type Options struct {
	// SampleInterval overrides the 5-second gmond announce interval
	// (the paper's d). Zero keeps the default.
	SampleInterval time.Duration
	// LossRate drops each announcement with this probability, modelling
	// the UDP multicast transport. Snapshots with missing metrics are
	// skipped by the performance filter.
	LossRate float64
}

// ProfileEntry executes a registry entry end to end and returns its
// profiling trace. seed controls all randomness in the run.
func ProfileEntry(e workload.Entry, seed int64) (*RunResult, error) {
	return ProfileEntryOpts(e, seed, Options{})
}

// ProfileEntryOpts is ProfileEntry with explicit Options.
func ProfileEntryOpts(e workload.Entry, seed int64, opts Options) (*RunResult, error) {
	app, err := e.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("testbed: build %s: %w", e.Name, err)
	}

	cluster := vmm.NewCluster()
	hostA := vmm.NewHost(vmm.HostConfig{Name: "hostA"})
	hostB := vmm.NewHost(vmm.HostConfig{Name: "hostB"})
	if err := cluster.AddHost(hostA); err != nil {
		return nil, err
	}
	if err := cluster.AddHost(hostB); err != nil {
		return nil, err
	}

	appVM := vmm.NewVM(vmm.VMConfig{Name: "vm1", MemKB: e.VMMemKB, Seed: seed})
	appVM.AddJob(app)
	if err := hostA.AddVM(appVM); err != nil {
		return nil, err
	}

	peerVM := vmm.NewVM(vmm.VMConfig{Name: "vm2", Seed: seed + 1})
	if e.Peer != nil {
		peer, err := e.Peer(seed + 1)
		if err != nil {
			return nil, fmt.Errorf("testbed: build peer for %s: %w", e.Name, err)
		}
		peerVM.AddJob(peer)
	}
	if err := hostB.AddVM(peerVM); err != nil {
		return nil, err
	}

	interval := opts.SampleInterval
	if interval == 0 {
		interval = ganglia.DefaultAnnounceInterval
	}
	bus := ganglia.NewBus()
	if opts.LossRate > 0 {
		if err := bus.SetLoss(opts.LossRate, seed+99); err != nil {
			return nil, err
		}
	}
	schema := metrics.DefaultSchema()
	prof, err := profiler.New(bus, schema)
	if err != nil {
		return nil, err
	}
	for _, vm := range []*vmm.VM{appVM, peerVM} {
		agent, err := ganglia.NewGmond(vm, bus, interval)
		if err != nil {
			return nil, err
		}
		if err := agent.Start(cluster.Queue()); err != nil {
			return nil, err
		}
	}

	// Run until the profiled application finishes (peer/looping jobs
	// excluded), or until the entry's cap for open-ended runs.
	deadline := e.MaxRun
	for !app.Done() && cluster.Now() < deadline {
		step := time.Minute
		if remaining := deadline - cluster.Now(); remaining < step {
			step = remaining
		}
		if err := cluster.RunFor(step); err != nil {
			return nil, fmt.Errorf("testbed: run %s: %w", e.Name, err)
		}
	}
	t1 := cluster.Now()
	if done, ok := cluster.CompletionTime(app.Name()); ok {
		t1 = done
	}
	t0 := interval // first announcement
	var trace *metrics.Trace
	if opts.LossRate > 0 {
		trace, _, err = prof.ExtractSkipIncomplete(appVM.Name(), t0, t1)
	} else {
		trace, err = prof.Extract(appVM.Name(), t0, t1)
	}
	if err != nil {
		return nil, fmt.Errorf("testbed: extract %s: %w", e.Name, err)
	}
	return &RunResult{
		Trace:             trace,
		Elapsed:           t1,
		App:               app,
		PoolAnnouncements: prof.Seen(),
	}, nil
}
