package appdb

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appstore"
	"repro/internal/phase"
)

// traceRecords is a realistic finalize sequence: several applications,
// mixed classes, fingerprints, verdicts, training reservoirs, gaps —
// every field a real daemon finalize stamps.
func traceRecords() []Record {
	classes := []appclass.Class{appclass.CPU, appclass.IO, appclass.Net, appclass.Mem, appclass.Idle}
	var out []Record
	for i := 0; i < 25; i++ {
		c := classes[i%len(classes)]
		comp := map[appclass.Class]float64{c: 0.8, appclass.Idle: 0.2}
		if c == appclass.Idle {
			comp = map[appclass.Class]float64{appclass.Idle: 1}
		}
		r := Record{
			App:             fmt.Sprintf("vm-%d", i%4),
			Class:           c,
			Composition:     comp,
			ExecutionTime:   time.Duration(i+1) * 7 * time.Second,
			Samples:         50 + i,
			FinalizedAt:     int64(1_700_000_000_000_000_000 + i*1_000_000_000),
			UnknownFraction: float64(i%10) / 20,
			Verdict:         c,
			ModelID:         "abcd1234",
		}
		if i%2 == 0 {
			r.Gaps, r.GapTime = 1, 3*time.Second
		}
		if i%5 == 3 {
			r.Fingerprint = &phase.Fingerprint{Phases: []phase.PhaseSig{
				{Class: c, DurFrac: 0.7, Centroid: []float64{float64(i), 1}},
				{Class: appclass.Idle, DurFrac: 0.3, Centroid: []float64{0, 0}},
			}}
			r.MatchedApp = fmt.Sprintf("vm-%d", (i+1)%4)
			r.MatchScore = 0.85
		}
		if i%7 == 0 {
			r.TrainMetrics = []string{"cpu_user", "bytes_in"}
			r.TrainSamples = [][]float64{{float64(i), 2}, {3, 4}}
		}
		out = append(out, r)
	}
	return out
}

// TestEngineEquivalence finalizes the same trace of records through the
// legacy in-memory/JSON engine and the segmented store and asserts
// every read API answers identically: the engine swap is invisible to
// callers (server finalize, placement, retraining, the fingerprint
// dictionary).
func TestEngineEquivalence(t *testing.T) {
	recs := traceRecords()

	// Old path: in-memory Puts persisted through the whole-file JSON
	// save/load cycle, exactly what the daemon did at shutdown.
	jsonPath := filepath.Join(t.TempDir(), "db.json")
	old := New()
	for _, r := range recs {
		if err := old.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	old, err := LoadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	// New path: the same finalize sequence appended to the segmented
	// store, closed and reopened so reads come off disk.
	storePath := filepath.Join(t.TempDir(), "store")
	nu, err := Open(storePath, appstore.Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := nu.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := nu.Close(); err != nil {
		t.Fatal(err)
	}
	nu, err = Open(storePath, appstore.Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer nu.Close()

	if got, want := nu.Apps(), old.Apps(); !reflect.DeepEqual(got, want) {
		t.Errorf("Apps: store %v, json %v", got, want)
	}
	if got, want := nu.Len(), old.Len(); got != want {
		t.Errorf("Len: store %d, json %d", got, want)
	}
	for _, app := range old.Apps() {
		if got, want := nu.Runs(app), old.Runs(app); !reflect.DeepEqual(got, want) {
			t.Errorf("Runs(%s) differ:\nstore %+v\njson  %+v", app, got, want)
		}
		gl, el := nu.Latest(app)
		wl, ew := old.Latest(app)
		if el != nil || ew != nil || !reflect.DeepEqual(gl, wl) {
			t.Errorf("Latest(%s): store %+v (%v), json %+v (%v)", app, gl, el, wl, ew)
		}
		gs, err1 := nu.Summarize(app)
		ws, err2 := old.Summarize(app)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(gs, ws) {
			t.Errorf("Summarize(%s): store %+v (%v), json %+v (%v)", app, gs, err1, ws, err2)
		}
	}
	if got, want := nu.Fingerprints(), old.Fingerprints(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fingerprints: store %v, json %v", got, want)
	}
	for _, c := range appclass.All() {
		if got, want := nu.ByClass(c), old.ByClass(c); !reflect.DeepEqual(got, want) {
			t.Errorf("ByClass(%s): store %v, json %v", c, got, want)
		}
	}
	if got, want := nu.ClassCounts(), old.ClassCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("ClassCounts: store %v, json %v", got, want)
	}
	if got, want := nu.TotalExecution(), old.TotalExecution(); got != want {
		t.Errorf("TotalExecution: store %v, json %v", got, want)
	}

	// Scan pages agree record-for-record across both engines.
	for _, f := range []Filter{
		{},
		{App: "vm-1"},
		{Class: appclass.CPU},
		{Verdict: appclass.IO},
		{Since: 1_700_000_005_000_000_000, Until: 1_700_000_015_000_000_000},
	} {
		var fromStore, fromJSON []Record
		for cursor := uint64(0); ; {
			page, next, err := nu.Scan(f, cursor, 4)
			if err != nil {
				t.Fatal(err)
			}
			fromStore = append(fromStore, page...)
			if next == 0 {
				break
			}
			cursor = next
		}
		for cursor := uint64(0); ; {
			page, next, err := old.Scan(f, cursor, 4)
			if err != nil {
				t.Fatal(err)
			}
			fromJSON = append(fromJSON, page...)
			if next == 0 {
				break
			}
			cursor = next
		}
		// The legacy JSON file groups records by application (Save writes
		// apps sorted), so a loaded legacy DB has lost the global finalize
		// order; compare the paginated results as sets. Per-application
		// order is covered by the Runs comparison above.
		sortRecs := func(rs []Record) {
			sort.Slice(rs, func(a, b int) bool {
				if rs[a].App != rs[b].App {
					return rs[a].App < rs[b].App
				}
				return rs[a].Samples < rs[b].Samples
			})
		}
		sortRecs(fromStore)
		sortRecs(fromJSON)
		if !reflect.DeepEqual(fromStore, fromJSON) {
			t.Errorf("Scan(%+v) differs:\nstore %d records\njson  %d records", f, len(fromStore), len(fromJSON))
		}
	}

	// The JSON export of the store-backed database is byte-identical to
	// the legacy engine's: migration back out is lossless too.
	var oldBuf, newBuf bytes.Buffer
	if err := old.Save(&oldBuf); err != nil {
		t.Fatal(err)
	}
	if err := nu.Save(&newBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
		t.Error("JSON export differs between engines")
	}
}

// TestOpenMigratesLegacyFile drives the transparent upgrade through the
// appdb API: Open on a path holding a legacy JSON database converts it
// and serves identical records.
func TestOpenMigratesLegacyFile(t *testing.T) {
	recs := traceRecords()
	old := New()
	for _, r := range recs {
		if err := old.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "appdb.json")
	if err := old.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path, appstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Store() == nil {
		t.Fatal("Open returned a memory-backed DB")
	}
	for _, app := range old.Apps() {
		if got, want := db.Runs(app), old.Runs(app); !reflect.DeepEqual(got, want) {
			t.Errorf("Runs(%s) differ after migration", app)
		}
	}
	if _, ok := db.StoreStats(); !ok {
		t.Error("StoreStats not available on store-backed DB")
	}
}
