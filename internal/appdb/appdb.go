// Package appdb implements the paper's application database (Figure 1):
// it stores, per application, the post-processed classification results
// of historical runs — class, class composition, and execution time —
// which schedulers query to make class-aware placement decisions. The
// store is an in-memory map with JSON persistence.
package appdb

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/appclass"
	"repro/internal/phase"
)

// Record is one historical run of an application.
type Record struct {
	// App is the application name.
	App string `json:"app"`
	// Class is the majority-vote application class of the run.
	Class appclass.Class `json:"class"`
	// Composition is the class composition (fractions summing to ~1).
	Composition map[appclass.Class]float64 `json:"composition"`
	// ExecutionTime is the run's t1 - t0.
	ExecutionTime time.Duration `json:"execution_time_ns"`
	// Samples is the number of snapshots m in the run.
	Samples int `json:"samples"`
	// Gaps and GapTime account for known holes in the run's sample
	// stream (missed polls while the profiler source was down). A record
	// with nonzero gaps carries a composition estimated over partial
	// coverage rather than the full run; schedulers may weight it down.
	Gaps    int           `json:"gaps,omitempty"`
	GapTime time.Duration `json:"gap_time_ns,omitempty"`
	// Phases is the run's detected phase sequence (empty when the daemon
	// ran without online segmentation).
	Phases []phase.Phase `json:"phases,omitempty"`
	// Fingerprint is the canonicalized phase-sequence fingerprint of the
	// run, the key the fingerprint dictionary matches future runs
	// against. Nil when segmentation was off or the run had no phases.
	Fingerprint *phase.Fingerprint `json:"fingerprint,omitempty"`
	// MatchedApp and MatchScore record the best fingerprint-dictionary
	// match found when the run finalized ("" / 0 when nothing cleared
	// the match threshold).
	MatchedApp string  `json:"matched_app,omitempty"`
	MatchScore float64 `json:"match_score,omitempty"`
	// UnknownFraction is the fraction of the run's snapshots that fell
	// outside their voted class's open-set threshold.
	UnknownFraction float64 `json:"unknown_fraction,omitempty"`
	// Verdict is the open-set session verdict: the majority class when
	// the run looked like trained behaviour, appclass.Unknown when most
	// snapshots were novel, or "" when the open-set test was off.
	Verdict appclass.Class `json:"verdict,omitempty"`
	// ModelID is the short compatibility hash of the model that served
	// the run — verdict provenance, so a disagreement can be traced to
	// the model that produced it. "" on records from before model
	// stamping.
	ModelID string `json:"model_id,omitempty"`
	// TrainMetrics and TrainSamples are the run's retained raw
	// expert-metric sample rows (one value per metric in TrainMetrics,
	// uniformly decimated over the whole run), the corpus online
	// retraining refits from. Empty when the daemon ran without
	// sampling.
	TrainMetrics []string    `json:"train_metrics,omitempty"`
	TrainSamples [][]float64 `json:"train_samples,omitempty"`
}

// Validate checks the record's invariants.
func (r Record) Validate() error {
	if r.App == "" {
		return fmt.Errorf("appdb: record has empty application name")
	}
	if !appclass.Valid(r.Class) {
		return fmt.Errorf("appdb: record for %q has invalid class %q", r.App, r.Class)
	}
	if r.ExecutionTime < 0 {
		return fmt.Errorf("appdb: record for %q has negative execution time", r.App)
	}
	if r.Samples < 0 {
		return fmt.Errorf("appdb: record for %q has negative sample count", r.App)
	}
	if r.Gaps < 0 || r.GapTime < 0 {
		return fmt.Errorf("appdb: record for %q has negative gap accounting", r.App)
	}
	var total float64
	for c, f := range r.Composition {
		if !appclass.Valid(c) {
			return fmt.Errorf("appdb: record for %q has invalid composition class %q", r.App, c)
		}
		if !(f >= 0 && f <= 1) { // also rejects NaN, which JSON cannot encode
			return fmt.Errorf("appdb: record for %q has composition fraction %v outside [0,1]", r.App, f)
		}
		total += f
	}
	if len(r.Composition) > 0 && (total < 0.99 || total > 1.01) {
		return fmt.Errorf("appdb: record for %q has composition summing to %v", r.App, total)
	}
	if !(r.UnknownFraction >= 0 && r.UnknownFraction <= 1) {
		return fmt.Errorf("appdb: record for %q has unknown fraction %v outside [0,1]", r.App, r.UnknownFraction)
	}
	if r.Verdict != "" && r.Verdict != appclass.Unknown && !appclass.Valid(r.Verdict) {
		return fmt.Errorf("appdb: record for %q has invalid verdict %q", r.App, r.Verdict)
	}
	if !(r.MatchScore >= 0 && r.MatchScore <= 1) {
		return fmt.Errorf("appdb: record for %q has match score %v outside [0,1]", r.App, r.MatchScore)
	}
	if r.MatchedApp != "" && r.Fingerprint == nil {
		return fmt.Errorf("appdb: record for %q matched %q without a fingerprint", r.App, r.MatchedApp)
	}
	if len(r.TrainSamples) > 0 && len(r.TrainMetrics) == 0 {
		return fmt.Errorf("appdb: record for %q has training samples without metric names", r.App)
	}
	for i, row := range r.TrainSamples {
		if len(row) != len(r.TrainMetrics) {
			return fmt.Errorf("appdb: record for %q training sample %d has %d values, want %d",
				r.App, i, len(row), len(r.TrainMetrics))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("appdb: record for %q training sample %d value %d is not finite", r.App, i, j)
			}
		}
	}
	return nil
}

// DB stores classification records keyed by application name. It is safe
// for concurrent use.
type DB struct {
	mu      sync.RWMutex
	records map[string][]Record
}

// New creates an empty database.
func New() *DB {
	return &DB{records: make(map[string][]Record)}
}

// Put appends a run record for its application.
func (db *DB) Put(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records[r.App] = append(db.records[r.App], r)
	return nil
}

// Runs returns all records of an application, oldest first.
func (db *DB) Runs(app string) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]Record(nil), db.records[app]...)
}

// Apps returns all application names, sorted.
func (db *DB) Apps() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.records))
	for a := range db.records {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, rs := range db.records {
		n += len(rs)
	}
	return n
}

// Fingerprints returns the fingerprint dictionary: each application's
// most recent fingerprinted run. This is the corpus BestMatch compares
// a finalizing session against.
func (db *DB) Fingerprints() map[string]phase.Fingerprint {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]phase.Fingerprint)
	for app, rs := range db.records {
		for i := len(rs) - 1; i >= 0; i-- {
			if fp := rs[i].Fingerprint; fp != nil && !fp.Empty() {
				out[app] = *fp
				break
			}
		}
	}
	return out
}

// Latest returns the most recent record of an application.
func (db *DB) Latest(app string) (Record, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rs := db.records[app]
	if len(rs) == 0 {
		return Record{}, fmt.Errorf("appdb: no records for application %q", app)
	}
	return rs[len(rs)-1], nil
}

// Summary aggregates an application's historical runs: the modal class,
// the mean composition, and the mean execution time — the "statistical
// abstracts of the application behavior" the paper stores for
// scheduling.
type Summary struct {
	App             string
	Runs            int
	Class           appclass.Class
	MeanComposition map[appclass.Class]float64
	MeanExecution   time.Duration
}

// Summarize aggregates all runs of an application.
func (db *DB) Summarize(app string) (Summary, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rs := db.records[app]
	if len(rs) == 0 {
		return Summary{}, fmt.Errorf("appdb: no records for application %q", app)
	}
	classCounts := make(map[appclass.Class]int)
	comp := make(map[appclass.Class]float64)
	var execSum time.Duration
	for _, r := range rs {
		classCounts[r.Class]++
		for c, f := range r.Composition {
			comp[c] += f
		}
		execSum += r.ExecutionTime
	}
	for c := range comp {
		comp[c] /= float64(len(rs))
	}
	var modal appclass.Class
	best := -1
	for c, n := range classCounts {
		if n > best || (n == best && c < modal) {
			modal, best = c, n
		}
	}
	return Summary{
		App:             app,
		Runs:            len(rs),
		Class:           modal,
		MeanComposition: comp,
		MeanExecution:   execSum / time.Duration(len(rs)),
	}, nil
}

// persistedDB is the JSON wire format.
type persistedDB struct {
	Records []Record `json:"records"`
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	doc := persistedDB{}
	for _, app := range db.appsLocked() {
		doc.Records = append(doc.Records, db.records[app]...)
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("appdb: encode: %w", err)
	}
	return nil
}

func (db *DB) appsLocked() []string {
	out := make([]string, 0, len(db.records))
	for a := range db.records {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	var doc persistedDB
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("appdb: decode: %w", err)
	}
	db := New()
	for i, rec := range doc.Records {
		if err := db.Put(rec); err != nil {
			return nil, fmt.Errorf("appdb: record %d: %w", i, err)
		}
	}
	return db, nil
}

// SaveFile persists the database to a file path atomically: the JSON is
// written to a temporary file in the same directory, fsynced, and
// renamed over the target, so a crash or failed write mid-save never
// corrupts an existing database (appclassd flushes on SIGTERM through
// this path).
func (db *DB) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("appdb: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	// On any failure, remove the temp file and leave the target alone.
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := db.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("appdb: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("appdb: close %s: %w", tmp, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("appdb: rename %s -> %s: %w", tmp, path, err)
	}
	return nil
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("appdb: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
