// Package appdb implements the paper's application database (Figure 1):
// it stores, per application, the post-processed classification results
// of historical runs — class, class composition, and execution time —
// which schedulers query to make class-aware placement decisions.
//
// The package keeps the public API; the storage engine is pluggable.
// New() gives the original in-memory map with whole-file JSON
// persistence (Save/Load/SaveFile/LoadFile), still the right tool for
// tests and offline tooling. Open() backs the same API with
// internal/appstore, the log-structured segmented store: O(1) appends
// on the finalize hot path, secondary indexes, paginated Scan,
// compaction and retention — the fleet-scale engine. Record, Summary,
// and Filter are aliases of the appstore types, so the two engines
// share one record format and every existing caller compiles unchanged.
package appdb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/appstore"
	"repro/internal/phase"
)

// Record is one historical run of an application (see appstore.Record
// for the field documentation).
type Record = appstore.Record

// Summary aggregates an application's historical runs: the modal class,
// the mean composition, and the mean execution time — the "statistical
// abstracts of the application behavior" the paper stores for
// scheduling.
type Summary = appstore.Summary

// Filter narrows a Scan (see appstore.Filter).
type Filter = appstore.Filter

// stored is one in-memory record plus its insertion sequence number,
// which gives the memory engine the same stable newest-first Scan
// cursor semantics as the segmented store.
type stored struct {
	seq uint64
	rec Record
}

// DB stores classification records keyed by application name. It is safe
// for concurrent use.
type DB struct {
	mu      sync.RWMutex
	records map[string][]stored
	nextSeq uint64
	store   *appstore.Store      // nil for the in-memory engine
	logf    func(string, ...any) // engine errors on no-error API paths
	events  eventLog
}

// New creates an empty in-memory database.
func New() *DB {
	return &DB{records: make(map[string][]stored), nextSeq: 1, logf: func(string, ...any) {}}
}

// Open opens a database backed by the log-structured segmented store at
// path (see appstore.Open; a legacy JSON file at path is converted in
// place). The returned DB serves the same API as an in-memory one;
// callers must Close it to flush the active segment. Engine read errors
// surfacing through API methods without an error return (Runs,
// Fingerprints, Prune) are reported through opt.Logf, so a damaged
// store degrades loudly instead of masquerading as an empty one.
func Open(path string, opt appstore.Options) (*DB, error) {
	st, err := appstore.Open(path, opt)
	if err != nil {
		return nil, err
	}
	db := New()
	db.store = st
	if opt.Logf != nil {
		db.logf = opt.Logf
	}
	return db, nil
}

// Store exposes the segmented-store engine, nil when the database is
// in-memory. Callers needing Scan or Stats can use the DB methods
// instead; this is for store-specific surgery (Compact, Sync).
func (db *DB) Store() *appstore.Store { return db.store }

// StoreStats reports segmented-store statistics; ok is false for the
// in-memory engine.
func (db *DB) StoreStats() (appstore.Stats, bool) {
	if db.store == nil {
		return appstore.Stats{}, false
	}
	return db.store.Stats(), true
}

// Close releases the storage engine. It is a no-op for the in-memory
// engine.
func (db *DB) Close() error {
	if db.store != nil {
		return db.store.Close()
	}
	return nil
}

// Put appends a run record for its application.
func (db *DB) Put(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if db.store != nil {
		return db.store.Append(&r)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records[r.App] = append(db.records[r.App], stored{seq: db.nextSeq, rec: r})
	db.nextSeq++
	return nil
}

// Runs returns all records of an application, oldest first. On the
// segmented store, unreadable records are logged and skipped — the
// readable remainder is still returned.
func (db *DB) Runs(app string) []Record {
	if db.store != nil {
		rs, err := db.store.Runs(app)
		if err != nil {
			db.logf("appdb: reading runs for %q: %v", app, err)
		}
		return rs
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ss := db.records[app]
	if len(ss) == 0 {
		return nil
	}
	out := make([]Record, len(ss))
	for i := range ss {
		out[i] = ss[i].rec
	}
	return out
}

// Apps returns all application names, sorted.
func (db *DB) Apps() []string {
	if db.store != nil {
		return db.store.Apps()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.appsLocked()
}

// Len returns the total number of records.
func (db *DB) Len() int {
	if db.store != nil {
		return db.store.Len()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, rs := range db.records {
		n += len(rs)
	}
	return n
}

// Scan returns up to limit records matching f, newest first, resuming
// from cursor (0 = newest; the returned cursor continues the scan, 0
// once exhausted). Both engines serve it; the segmented store walks its
// secondary indexes.
func (db *DB) Scan(f Filter, cursor uint64, limit int) ([]Record, uint64, error) {
	if db.store != nil {
		return db.store.Scan(f, cursor, limit)
	}
	if limit <= 0 {
		limit = appstore.DefaultScanLimit
	}
	if limit > appstore.MaxScanLimit {
		limit = appstore.MaxScanLimit
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var all []stored
	if f.App != "" {
		all = append(all, db.records[f.App]...)
	} else {
		for _, ss := range db.records {
			all = append(all, ss...)
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq > all[b].seq })
	var out []Record
	var next uint64
	for i := range all {
		e := &all[i]
		if cursor != 0 && e.seq >= cursor {
			continue
		}
		if !matchFilter(f, &e.rec) {
			continue
		}
		out = append(out, e.rec)
		next = e.seq
		if len(out) >= limit {
			return out, next, nil
		}
	}
	return out, 0, nil
}

func matchFilter(f Filter, r *Record) bool {
	if f.App != "" && r.App != f.App {
		return false
	}
	if f.Class != "" && r.Class != f.Class {
		return false
	}
	if f.Verdict != "" && r.Verdict != f.Verdict {
		return false
	}
	if f.Model != "" && r.ModelID != f.Model {
		return false
	}
	if f.Since != 0 || f.Until != 0 {
		if r.FinalizedAt == 0 {
			return false
		}
		if f.Since != 0 && r.FinalizedAt < f.Since {
			return false
		}
		if f.Until != 0 && r.FinalizedAt > f.Until {
			return false
		}
	}
	return true
}

// Fingerprints returns the fingerprint dictionary: each application's
// most recent fingerprinted run. This is the corpus BestMatch compares
// a finalizing session against.
func (db *DB) Fingerprints() map[string]phase.Fingerprint {
	if db.store != nil {
		fps, err := db.store.Fingerprints()
		if err != nil {
			// The partial dictionary still matches what it can; say what
			// was lost so degraded verdicts are explainable.
			db.logf("appdb: reading fingerprint dictionary: %v", err)
		}
		return fps
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]phase.Fingerprint)
	for app, ss := range db.records {
		for i := len(ss) - 1; i >= 0; i-- {
			if fp := ss[i].rec.Fingerprint; fp != nil && !fp.Empty() {
				out[app] = *fp
				break
			}
		}
	}
	return out
}

// Latest returns the most recent record of an application.
func (db *DB) Latest(app string) (Record, error) {
	if db.store != nil {
		return db.store.Latest(app)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ss := db.records[app]
	if len(ss) == 0 {
		return Record{}, fmt.Errorf("appdb: no records for application %q", app)
	}
	return ss[len(ss)-1].rec, nil
}

// Summarize aggregates all runs of an application.
func (db *DB) Summarize(app string) (Summary, error) {
	if db.store != nil {
		return db.store.Summarize(app)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ss := db.records[app]
	if len(ss) == 0 {
		return Summary{}, fmt.Errorf("appdb: no records for application %q", app)
	}
	rs := make([]Record, len(ss))
	for i := range ss {
		rs[i] = ss[i].rec
	}
	return summarize(app, rs), nil
}

// persistedDB is the JSON wire format.
type persistedDB struct {
	Records []Record `json:"records"`
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	doc := persistedDB{}
	for _, app := range db.Apps() {
		doc.Records = append(doc.Records, db.Runs(app)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("appdb: encode: %w", err)
	}
	return nil
}

func (db *DB) appsLocked() []string {
	out := make([]string, 0, len(db.records))
	for a := range db.records {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Load reads a database written by Save into the in-memory engine. The
// records are stored exactly as read — in particular, finalize stamps
// are preserved (or stay zero on pre-stamping files), so a legacy file
// round-trips bit-identically through Load+Save.
func Load(r io.Reader) (*DB, error) {
	var doc persistedDB
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("appdb: decode: %w", err)
	}
	db := New()
	for i, rec := range doc.Records {
		if err := db.Put(rec); err != nil {
			return nil, fmt.Errorf("appdb: record %d: %w", i, err)
		}
	}
	return db, nil
}

// SaveFile persists the database to a file path atomically: the JSON is
// written to a temporary file in the same directory, fsynced, and
// renamed over the target, so a crash or failed write mid-save never
// corrupts an existing database.
func (db *DB) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("appdb: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	// On any failure, remove the temp file and leave the target alone.
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := db.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("appdb: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("appdb: close %s: %w", tmp, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("appdb: rename %s -> %s: %w", tmp, path, err)
	}
	return nil
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("appdb: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
