package appdb

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appstore"
)

// benchRecord is a representative finalized run: a mixed composition, a
// verdict, a model stamp — what the daemon writes on every finalize.
func benchRecord(i int) Record {
	classes := appclass.All()
	c := classes[i%len(classes)]
	comp := map[appclass.Class]float64{c: 1}
	if c != appclass.Idle {
		comp = map[appclass.Class]float64{c: 0.8, appclass.Idle: 0.2}
	}
	return Record{
		App:           fmt.Sprintf("app-%03d", i%100),
		Class:         c,
		Composition:   comp,
		ExecutionTime: time.Duration(i%600+1) * time.Second,
		Samples:       i%600 + 1,
		FinalizedAt:   int64(1_700_000_000+i) * int64(time.Second),
		Verdict:       c,
		ModelID:       "cafe0123beef",
	}
}

// BenchmarkFinalizeAppend is one finalize against the segmented store
// holding 10k prior records: a single framed append plus fsync,
// independent of database size. CI gates it >= 10x faster than
// BenchmarkFinalizeSaveFile measured in the same run.
func BenchmarkFinalizeAppend(b *testing.B) {
	db, err := Open(filepath.Join(b.TempDir(), "store"), appstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 10_000; i++ {
		if err := db.Put(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(benchRecord(10_000 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinalizeSaveFile is the legacy persistence the store
// replaces: every finalize rewrote the whole 10k-record database to a
// JSON file, O(n) per finalize.
func BenchmarkFinalizeSaveFile(b *testing.B) {
	db := New()
	for i := 0; i < 10_000; i++ {
		if err := db.Put(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	path := filepath.Join(b.TempDir(), "db.json")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(benchRecord(10_000 + i)); err != nil {
			b.Fatal(err)
		}
		if err := db.SaveFile(path); err != nil {
			b.Fatal(err)
		}
	}
}
