package appdb

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appclass"
)

func rec(app string, class appclass.Class, exec time.Duration) Record {
	return Record{
		App:           app,
		Class:         class,
		Composition:   map[appclass.Class]float64{class: 1},
		ExecutionTime: exec,
		Samples:       int(exec / (5 * time.Second)),
	}
}

func TestPutAndQuery(t *testing.T) {
	db := New()
	if err := db.Put(rec("PostMark", appclass.IO, 260*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(rec("PostMark", appclass.IO, 280*time.Second)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d, want 2", db.Len())
	}
	runs := db.Runs("PostMark")
	if len(runs) != 2 || runs[0].ExecutionTime != 260*time.Second {
		t.Errorf("Runs = %+v", runs)
	}
	latest, err := db.Latest("PostMark")
	if err != nil || latest.ExecutionTime != 280*time.Second {
		t.Errorf("Latest = (%+v, %v)", latest, err)
	}
	if _, err := db.Latest("ghost"); err == nil {
		t.Error("Latest(ghost): want error")
	}
	if apps := db.Apps(); len(apps) != 1 || apps[0] != "PostMark" {
		t.Errorf("Apps = %v", apps)
	}
}

func TestPutValidation(t *testing.T) {
	db := New()
	bad := []Record{
		{App: "", Class: appclass.IO},
		{App: "x", Class: "nope"},
		{App: "x", Class: appclass.IO, ExecutionTime: -time.Second},
		{App: "x", Class: appclass.IO, Samples: -1},
		{App: "x", Class: appclass.IO, Composition: map[appclass.Class]float64{"weird": 1}},
		{App: "x", Class: appclass.IO, Composition: map[appclass.Class]float64{appclass.IO: 2}},
		{App: "x", Class: appclass.IO, Composition: map[appclass.Class]float64{appclass.IO: 0.4}},
	}
	for i, r := range bad {
		if err := db.Put(r); err == nil {
			t.Errorf("bad record %d accepted: %+v", i, r)
		}
	}
	if db.Len() != 0 {
		t.Errorf("Len = %d after rejected puts", db.Len())
	}
}

func TestSummarize(t *testing.T) {
	db := New()
	_ = db.Put(Record{
		App: "A", Class: appclass.CPU,
		Composition:   map[appclass.Class]float64{appclass.CPU: 0.9, appclass.IO: 0.1},
		ExecutionTime: 100 * time.Second,
	})
	_ = db.Put(Record{
		App: "A", Class: appclass.CPU,
		Composition:   map[appclass.Class]float64{appclass.CPU: 0.7, appclass.IO: 0.3},
		ExecutionTime: 200 * time.Second,
	})
	_ = db.Put(Record{
		App: "A", Class: appclass.IO,
		Composition:   map[appclass.Class]float64{appclass.IO: 1},
		ExecutionTime: 300 * time.Second,
	})
	s, err := db.Summarize("A")
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 3 || s.Class != appclass.CPU {
		t.Errorf("summary = %+v, want modal class cpu over 3 runs", s)
	}
	if s.MeanExecution != 200*time.Second {
		t.Errorf("mean execution = %v, want 200s", s.MeanExecution)
	}
	wantIO := (0.1 + 0.3 + 1.0) / 3
	if got := s.MeanComposition[appclass.IO]; got < wantIO-1e-9 || got > wantIO+1e-9 {
		t.Errorf("mean io composition = %v, want %v", got, wantIO)
	}
	if _, err := db.Summarize("ghost"); err == nil {
		t.Error("Summarize(ghost): want error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	_ = db.Put(rec("A", appclass.CPU, 100*time.Second))
	_ = db.Put(rec("B", appclass.Net, 50*time.Second))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != 2 {
		t.Errorf("loaded Len = %d", loaded.Len())
	}
	got, err := loaded.Latest("B")
	if err != nil || got.Class != appclass.Net || got.ExecutionTime != 50*time.Second {
		t.Errorf("loaded B = (%+v, %v)", got, err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := Load(strings.NewReader(`{"records":[{"app":"","class":"io"}]}`)); err == nil {
		t.Error("invalid record: want error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := New()
	_ = db.Put(rec("A", appclass.Mem, 10*time.Second))
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Len() != 1 {
		t.Errorf("loaded Len = %d", loaded.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = db.Put(rec("app", appclass.IO, time.Second))
				db.Runs("app")
				db.Apps()
				_, _ = db.Summarize("app")
			}
		}()
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Errorf("Len = %d, want 800", db.Len())
	}
}

func TestRunsReturnsCopy(t *testing.T) {
	db := New()
	_ = db.Put(rec("A", appclass.IO, time.Second))
	runs := db.Runs("A")
	runs[0].App = "mutated"
	if got, _ := db.Latest("A"); got.App != "A" {
		t.Error("Runs exposes internal storage")
	}
}

// TestSaveFileAtomic verifies the crash-safety contract of SaveFile: a
// save that fails mid-write must leave an existing database file
// untouched, and a successful save must leave no temp files behind.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.json")

	good := New()
	if err := good.Put(rec("keeper", appclass.CPU, time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A composition with NaN passes through no validation here (the map
	// is poked in directly) and fails JSON encoding partway through the
	// write — exactly the failed-write scenario.
	bad := New()
	bad.records["broken"] = []stored{{seq: 1, rec: Record{
		App:         "broken",
		Class:       appclass.IO,
		Composition: map[appclass.Class]float64{appclass.IO: math.NaN()},
	}}}
	if err := bad.SaveFile(path); err == nil {
		t.Fatal("SaveFile with unencodable record: want error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("old database file gone after failed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save corrupted the existing database file")
	}

	// No temp droppings in the directory, before or after a second
	// successful save.
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "db.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("directory contains %v, want only db.json", names)
	}
}

// TestSaveFileFailsWithoutDirectory pins the error path when the temp
// file cannot be created at all.
func TestSaveFileFailsWithoutDirectory(t *testing.T) {
	db := New()
	err := db.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "db.json"))
	if err == nil {
		t.Fatal("SaveFile into missing directory: want error")
	}
}

// TestValidateRejectsNaNComposition pins the guard that keeps
// unencodable records out of the database in the first place.
func TestValidateRejectsNaNComposition(t *testing.T) {
	r := rec("nan", appclass.CPU, time.Minute)
	r.Composition = map[appclass.Class]float64{appclass.CPU: math.NaN()}
	if err := r.Validate(); err == nil {
		t.Error("NaN composition fraction: want error")
	}
}
