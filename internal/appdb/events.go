package appdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The event log records operational incidents the database should
// remember across restarts — model auto-rollbacks, scrub repairs, task
// escalations — next to the run records they affected. Events are not
// Records (they have no class or composition to validate), so they get
// their own append-only JSON-lines sidecar in the store directory; the
// in-memory engine keeps them in a slice. Malformed lines (a torn tail
// from a crash mid-append) are skipped on read, never fatal.

// Event is one operational incident worth remembering.
type Event struct {
	// AtUnixNS is when the event happened.
	AtUnixNS int64 `json:"at_unix_ns"`
	// Type is the event kind, e.g. "model_rollback", "scrub_repair",
	// "task_escalated".
	Type string `json:"type"`
	// Detail carries event-specific fields (model IDs, segment numbers,
	// breach rates), all stringly so the log schema never churns.
	Detail map[string]string `json:"detail,omitempty"`
}

// eventsFile is the sidecar name inside a segmented store directory.
const eventsFile = "events.jsonl"

// eventLog is the engine-independent event state hanging off a DB.
type eventLog struct {
	mu  sync.Mutex
	mem []Event // in-memory engine only
}

// PutEvent appends an operational event. On the segmented store it is
// durable (O_APPEND write of one JSON line); in memory it lives as long
// as the DB.
func (db *DB) PutEvent(e Event) error {
	if e.Type == "" {
		return fmt.Errorf("appdb: event needs a type")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("appdb: encode event: %w", err)
	}
	db.events.mu.Lock()
	defer db.events.mu.Unlock()
	if db.store == nil {
		db.events.mem = append(db.events.mem, e)
		return nil
	}
	path := filepath.Join(db.store.Dir(), eventsFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("appdb: open event log: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("appdb: append event: %w", err)
	}
	return nil
}

// Events returns the most recent events, oldest first, at most limit
// (0 means all). Unparsable lines — a torn tail from a crash
// mid-append — are skipped, not fatal.
func (db *DB) Events(limit int) ([]Event, error) {
	db.events.mu.Lock()
	defer db.events.mu.Unlock()
	var out []Event
	if db.store == nil {
		out = append(out, db.events.mem...)
	} else {
		f, err := os.Open(filepath.Join(db.store.Dir(), eventsFile))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, fmt.Errorf("appdb: open event log: %w", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var e Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Type == "" {
				continue // torn or foreign line
			}
			out = append(out, e)
		}
		if err := sc.Err(); err != nil {
			return out, fmt.Errorf("appdb: read event log: %w", err)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out, nil
}
