package appdb

import (
	"sort"
	"time"

	"repro/internal/appclass"
)

// ByClass returns the applications whose modal class matches c, sorted
// by name — the query a class-aware scheduler issues ("give me the
// I/O-intensive applications").
func (db *DB) ByClass(c appclass.Class) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for app, rs := range db.records {
		counts := make(map[appclass.Class]int)
		for _, r := range rs {
			counts[r.Class]++
		}
		var modal appclass.Class
		best := -1
		for cl, n := range counts {
			if n > best || (n == best && cl < modal) {
				modal, best = cl, n
			}
		}
		if modal == c {
			out = append(out, app)
		}
	}
	sort.Strings(out)
	return out
}

// Prune keeps at most keep most-recent records per application,
// returning the number of records dropped. A keep of zero or less
// removes nothing.
func (db *DB) Prune(keep int) int {
	if keep <= 0 {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	for app, rs := range db.records {
		if len(rs) > keep {
			dropped += len(rs) - keep
			db.records[app] = append([]Record(nil), rs[len(rs)-keep:]...)
		}
	}
	return dropped
}

// ClassCounts tallies the modal class of every application.
func (db *DB) ClassCounts() map[appclass.Class]int {
	out := make(map[appclass.Class]int)
	for _, c := range appclass.All() {
		if n := len(db.ByClass(c)); n > 0 {
			out[c] = n
		}
	}
	return out
}

// TotalExecution sums the execution time of every stored run — the
// accounting view a provider bills from.
func (db *DB) TotalExecution() time.Duration {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sum time.Duration
	for _, rs := range db.records {
		for _, r := range rs {
			sum += r.ExecutionTime
		}
	}
	return sum
}
