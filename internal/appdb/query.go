package appdb

import (
	"sort"
	"time"

	"repro/internal/appclass"
)

// summarize aggregates one application's records; both engines share
// the arithmetic so summaries are identical regardless of backend.
func summarize(app string, rs []Record) Summary {
	classCounts := make(map[appclass.Class]int)
	comp := make(map[appclass.Class]float64)
	var execSum time.Duration
	for _, r := range rs {
		classCounts[r.Class]++
		for c, f := range r.Composition {
			comp[c] += f
		}
		execSum += r.ExecutionTime
	}
	for c := range comp {
		comp[c] /= float64(len(rs))
	}
	return Summary{
		App:             app,
		Runs:            len(rs),
		Class:           modalClass(classCounts),
		MeanComposition: comp,
		MeanExecution:   execSum / time.Duration(len(rs)),
	}
}

// modalClass picks the most frequent class, ties broken by the lesser
// class label.
func modalClass(counts map[appclass.Class]int) appclass.Class {
	var modal appclass.Class
	best := -1
	for cl, n := range counts {
		if n > best || (n == best && cl < modal) {
			modal, best = cl, n
		}
	}
	return modal
}

// ByClass returns the applications whose modal class matches c, sorted
// by name — the query a class-aware scheduler issues ("give me the
// I/O-intensive applications").
func (db *DB) ByClass(c appclass.Class) []string {
	if db.store != nil {
		return db.store.ByClass(c)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for app, ss := range db.records {
		counts := make(map[appclass.Class]int)
		for _, s := range ss {
			counts[s.rec.Class]++
		}
		if len(counts) > 0 && modalClass(counts) == c {
			out = append(out, app)
		}
	}
	sort.Strings(out)
	return out
}

// Prune keeps at most keep most-recent records per application,
// returning the number of records dropped. A keep of zero or less
// removes nothing. On the segmented store this tombstones and compacts.
func (db *DB) Prune(keep int) int {
	if keep <= 0 {
		return 0
	}
	if db.store != nil {
		dropped, err := db.store.Prune(keep)
		if err != nil {
			db.logf("appdb: prune(keep=%d): %v", keep, err)
		}
		return dropped
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	for app, ss := range db.records {
		if len(ss) > keep {
			dropped += len(ss) - keep
			db.records[app] = append([]stored(nil), ss[len(ss)-keep:]...)
		}
	}
	return dropped
}

// ClassCounts tallies the modal class of every application.
func (db *DB) ClassCounts() map[appclass.Class]int {
	out := make(map[appclass.Class]int)
	for _, c := range appclass.All() {
		if n := len(db.ByClass(c)); n > 0 {
			out[c] = n
		}
	}
	return out
}

// TotalExecution sums the execution time of every stored run — the
// accounting view a provider bills from.
func (db *DB) TotalExecution() time.Duration {
	if db.store != nil {
		return db.store.TotalExecution()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sum time.Duration
	for _, ss := range db.records {
		for _, s := range ss {
			sum += s.rec.ExecutionTime
		}
	}
	return sum
}
