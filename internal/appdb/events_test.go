package appdb

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/appstore"
)

func TestEventsInMemory(t *testing.T) {
	db := New()
	if err := db.PutEvent(Event{Type: "model_rollback", AtUnixNS: 1, Detail: map[string]string{"from": "m1"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEvent(Event{Type: "scrub_repair", AtUnixNS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutEvent(Event{}); err == nil {
		t.Error("typeless event accepted")
	}
	evs, err := db.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != "model_rollback" || evs[0].Detail["from"] != "m1" {
		t.Fatalf("events = %+v", evs)
	}
	if evs, _ = db.Events(1); len(evs) != 1 || evs[0].Type != "scrub_repair" {
		t.Fatalf("limited events = %+v", evs)
	}
}

func TestEventsPersistAndSkipTornLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store")
	db, err := Open(path, appstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.PutEvent(Event{Type: "scrub_repair", AtUnixNS: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn trailing line.
	f, err := os.OpenFile(filepath.Join(path, "events.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"at_unix_ns":99,"ty`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(path, appstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	evs, err := db2.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("events after reopen = %+v, want 3 (torn line skipped)", evs)
	}
	if evs[2].AtUnixNS != 2 {
		t.Errorf("last event = %+v", evs[2])
	}
}
