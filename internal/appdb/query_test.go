package appdb

import (
	"testing"
	"time"

	"repro/internal/appclass"
)

func seedQueryDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	put := func(r Record) {
		if err := db.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	put(rec("seis", appclass.CPU, 600*time.Second))
	put(rec("seis", appclass.CPU, 610*time.Second))
	put(rec("seis", appclass.IO, 900*time.Second)) // one anomalous run
	put(rec("postmark", appclass.IO, 260*time.Second))
	put(rec("netpipe", appclass.Net, 370*time.Second))
	return db
}

func TestByClass(t *testing.T) {
	db := seedQueryDB(t)
	cpu := db.ByClass(appclass.CPU)
	if len(cpu) != 1 || cpu[0] != "seis" {
		t.Errorf("ByClass(cpu) = %v", cpu)
	}
	io := db.ByClass(appclass.IO)
	if len(io) != 1 || io[0] != "postmark" {
		t.Errorf("ByClass(io) = %v (modal class must win)", io)
	}
	if got := db.ByClass(appclass.Mem); len(got) != 0 {
		t.Errorf("ByClass(mem) = %v, want empty", got)
	}
}

func TestClassCounts(t *testing.T) {
	db := seedQueryDB(t)
	counts := db.ClassCounts()
	if counts[appclass.CPU] != 1 || counts[appclass.IO] != 1 || counts[appclass.Net] != 1 {
		t.Errorf("ClassCounts = %v", counts)
	}
	if _, ok := counts[appclass.Mem]; ok {
		t.Error("empty class present in counts")
	}
}

func TestPrune(t *testing.T) {
	db := seedQueryDB(t)
	dropped := db.Prune(1)
	if dropped != 2 {
		t.Errorf("Prune dropped %d, want 2", dropped)
	}
	runs := db.Runs("seis")
	if len(runs) != 1 {
		t.Fatalf("seis has %d runs after prune", len(runs))
	}
	// The newest record survives.
	if runs[0].ExecutionTime != 900*time.Second {
		t.Errorf("kept run = %+v, want the newest", runs[0])
	}
	if db.Prune(0) != 0 {
		t.Error("Prune(0) should drop nothing")
	}
	if db.Prune(5) != 0 {
		t.Error("Prune above size should drop nothing")
	}
}

func TestTotalExecution(t *testing.T) {
	db := seedQueryDB(t)
	want := (600 + 610 + 900 + 260 + 370) * time.Second
	if got := db.TotalExecution(); got != want {
		t.Errorf("TotalExecution = %v, want %v", got, want)
	}
	if New().TotalExecution() != 0 {
		t.Error("empty DB total should be 0")
	}
}
