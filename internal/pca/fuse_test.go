package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// randomScaledData builds a rows×cols matrix with per-column scale and offset
// so normalization has real work to do.
func randomScaledData(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		scale := math.Exp(rng.NormFloat64() * 2)
		offset := rng.NormFloat64() * 10
		for i := 0; i < rows; i++ {
			m.Set(i, j, offset+scale*rng.NormFloat64())
		}
	}
	return m
}

// fitStaged fits a normalizer and PCA model on random data and returns
// both plus the raw data.
func fitStaged(t *testing.T, rng *rand.Rand, rows, cols, q int) (*Normalizer, *Model, *linalg.Matrix) {
	t.Helper()
	raw := randomScaledData(rng, rows, cols)
	norm, err := FitNormalizer(raw)
	if err != nil {
		t.Fatal(err)
	}
	normalized, err := norm.Apply(raw)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Fit(normalized, Options{Components: q})
	if err != nil {
		t.Fatal(err)
	}
	return norm, model, raw
}

// TestFuseMatchesStagedPipeline is the property at the heart of the
// fused kernel: for randomized fits and randomized inputs, the single
// affine map must reproduce normalize→center→project within 1e-9.
func TestFuseMatchesStagedPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		cols := 2 + rng.Intn(10)
		q := 1 + rng.Intn(cols)
		norm, model, _ := fitStaged(t, rng, 20+rng.Intn(100), cols, q)
		fused, err := Fuse(norm, model)
		if err != nil {
			t.Fatal(err)
		}
		if fused.P() != cols || fused.Q() != q {
			t.Fatalf("trial %d: fused shape %dx%d, want %dx%d", trial, fused.Q(), fused.P(), q, cols)
		}
		for probe := 0; probe < 20; probe++ {
			x := make(linalg.Vector, cols)
			for i := range x {
				x[i] = rng.NormFloat64() * 100
			}
			z, err := norm.ApplyVec(x)
			if err != nil {
				t.Fatal(err)
			}
			want, err := model.TransformVec(z)
			if err != nil {
				t.Fatal(err)
			}
			got := make(linalg.Vector, q)
			if err := fused.ApplyInto(got, x); err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					t.Fatalf("trial %d probe %d: fused[%d] = %v, staged %v (diff %g)",
						trial, probe, j, got[j], want[j], math.Abs(got[j]-want[j]))
				}
			}
		}
	}
}

func TestFuseGatherMatchesSubsetApply(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	norm, model, _ := fitStaged(t, rng, 60, 8, 2)
	fused, err := Fuse(norm, model)
	if err != nil {
		t.Fatal(err)
	}
	// A 33-wide source vector with the 8 expert values scattered inside.
	src := make([]float64, 33)
	for i := range src {
		src[i] = rng.NormFloat64() * 50
	}
	idx := []int{4, 2, 20, 21, 29, 30, 31, 32}
	x := make(linalg.Vector, len(idx))
	for i, j := range idx {
		x[i] = src[j]
	}
	want := make(linalg.Vector, 2)
	if err := fused.ApplyInto(want, x); err != nil {
		t.Fatal(err)
	}
	got := make(linalg.Vector, 2)
	if err := fused.GatherInto(got, src, idx); err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("gather[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestFuseApplyRowsMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	norm, model, raw := fitStaged(t, rng, 80, 6, 3)
	fused, err := Fuse(norm, model)
	if err != nil {
		t.Fatal(err)
	}
	normalized, err := norm.Apply(raw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Transform(normalized)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fused.ApplyRows(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Error("fused batch features diverge from staged Transform beyond 1e-9")
	}
}

func TestFuseErrors(t *testing.T) {
	if _, err := Fuse(nil, nil); err == nil {
		t.Error("Fuse accepted nil inputs")
	}
	rng := rand.New(rand.NewSource(1))
	norm, _, _ := fitStaged(t, rng, 30, 4, 2)
	_, model, _ := fitStaged(t, rng, 30, 5, 2)
	if _, err := Fuse(norm, model); err == nil {
		t.Error("Fuse accepted a normalizer/model arity mismatch")
	}
}
