package pca

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// The constructors in this file rebuild fitted models from persisted
// parameters (internal/classify's Save/Load).

// NormalizerFromParams reconstructs a normalizer from per-column z-score
// parameters.
func NormalizerFromParams(zs []stats.ZScore) *Normalizer {
	return &Normalizer{zs: append([]stats.ZScore(nil), zs...)}
}

// ColMeans exposes the training-data column means of a fitted model.
func (m *Model) ColMeans() []float64 {
	return append([]float64(nil), m.colMeans...)
}

// ModelFromParams reconstructs a PCA model from its persisted
// parameters: the p×q component matrix, all p eigenvalues, the retained
// component count q, and the training column means.
func ModelFromParams(components *linalg.Matrix, eigenvalues []float64, q int, colMeans []float64) (*Model, error) {
	if components == nil {
		return nil, fmt.Errorf("pca: nil components")
	}
	p := components.Rows()
	if q <= 0 || q != components.Cols() {
		return nil, fmt.Errorf("pca: q = %d does not match components %dx%d", q, p, components.Cols())
	}
	if len(colMeans) != p {
		return nil, fmt.Errorf("pca: %d column means for %d metrics", len(colMeans), p)
	}
	if len(eigenvalues) < q {
		return nil, fmt.Errorf("pca: %d eigenvalues for q = %d", len(eigenvalues), q)
	}
	return &Model{
		Components:  components.Clone(),
		Eigenvalues: append(linalg.Vector(nil), eigenvalues...),
		Q:           q,
		colMeans:    append(linalg.Vector(nil), colMeans...),
	}, nil
}
