package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// TestPCADirectionsScaleDominatedWithoutNormalization is the
// normalization ablation DESIGN.md calls out: without zero-mean/
// unit-variance preprocessing, whichever metric has the largest raw
// units (e.g. bytes/s vs CPU percent) owns the first principal
// component regardless of the class structure, which is why the paper's
// preprocessor normalizes before PCA.
func TestPCADirectionsScaleDominatedWithoutNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		// Two informative metrics with equal class signal, but metric 0
		// measured in units 1e6 times larger.
		n := 200
		data := linalg.NewMatrix(n, 2)
		for i := 0; i < n; i++ {
			signal := float64(i%2)*10 + rng.NormFloat64()
			data.Set(i, 0, signal*1e6)
			data.Set(i, 1, signal+rng.NormFloat64())
		}

		raw, err := Fit(data, Options{Components: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Without normalization PC1 is essentially the big-unit axis.
		if w := math.Abs(raw.Components.At(0, 0)); w < 0.999 {
			t.Fatalf("trial %d: raw PC1 weight on the large-unit metric = %v, expected ~1 (scale domination)", trial, w)
		}

		norm, err := FitNormalizer(data)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := norm.Apply(data)
		if err != nil {
			t.Fatal(err)
		}
		balanced, err := Fit(nd, Options{Components: 1})
		if err != nil {
			t.Fatal(err)
		}
		// After normalization the equally informative metrics share PC1.
		w0 := math.Abs(balanced.Components.At(0, 0))
		w1 := math.Abs(balanced.Components.At(1, 0))
		if math.Abs(w0-w1) > 0.15 {
			t.Fatalf("trial %d: normalized PC1 weights = (%v, %v), expected balanced", trial, w0, w1)
		}
	}
}

// TestPCAInvariantUnderOrthogonalRotation checks a defining property:
// rotating the (centered) data rotates the principal directions with it,
// leaving eigenvalues unchanged.
func TestPCAInvariantUnderOrthogonalRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	data := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		data.Set(i, 0, rng.NormFloat64()*5)
		data.Set(i, 1, rng.NormFloat64())
	}
	theta := 0.7
	rot, err := linalg.FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := data.Mul(rot.T())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fit(data, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(rotated, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if math.Abs(a.Eigenvalues[k]-b.Eigenvalues[k]) > 1e-8*(1+a.Eigenvalues[k]) {
			t.Errorf("eigenvalue %d changed under rotation: %v vs %v", k, a.Eigenvalues[k], b.Eigenvalues[k])
		}
		// b's direction should be the rotation of a's (up to sign).
		ra, err := rot.MulVec(a.Components.Col(k))
		if err != nil {
			t.Fatal(err)
		}
		dot, err := ra.Dot(b.Components.Col(k))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Errorf("direction %d not rotated consistently: |dot| = %v", k, math.Abs(dot))
		}
	}
}
