package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestSelectFeaturesDropsConstantAndRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Columns: 0 = signal, 1 = copy of 0 (redundant), 2 = constant,
	// 3 = independent signal with smaller variance.
	n := 300
	data := linalg.NewMatrix(n, 4)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 3
		data.Set(i, 0, a)
		data.Set(i, 1, a*2+0.001*rng.NormFloat64())
		data.Set(i, 2, 7)
		data.Set(i, 3, b)
	}
	kept, err := SelectFeatures(data, 0, 0.9)
	if err != nil {
		t.Fatalf("SelectFeatures: %v", err)
	}
	has := func(j int) bool {
		for _, k := range kept {
			if k == j {
				return true
			}
		}
		return false
	}
	if has(2) {
		t.Error("constant column kept")
	}
	if has(0) && has(1) {
		t.Error("both redundant copies kept")
	}
	if !has(3) {
		t.Error("independent signal dropped")
	}
}

func TestSelectFeaturesMaxKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := linalg.NewMatrix(100, 5)
	for i := 0; i < 100; i++ {
		for j := 0; j < 5; j++ {
			data.Set(i, j, rng.NormFloat64()*float64(j+1))
		}
	}
	kept, err := SelectFeatures(data, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("kept %d features, want 2", len(kept))
	}
	// Variance ranking: the widest columns (4 then 3) come first.
	if kept[0] != 4 {
		t.Errorf("first kept = %d, want highest-variance column 4", kept[0])
	}
}

func TestSelectFeaturesValidation(t *testing.T) {
	if _, err := SelectFeatures(linalg.NewMatrix(1, 2), 0, 0.9); err == nil {
		t.Error("too few rows: want error")
	}
	data := linalg.NewMatrix(10, 2)
	if _, err := SelectFeatures(data, 0, 1.5); err == nil {
		t.Error("bad correlation bound: want error")
	}
	// All-constant data has no informative features.
	if _, err := SelectFeatures(data, 0, 0.9); err == nil {
		t.Error("constant data: want error")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r := pearson(xs, []float64{2, 4, 6, 8}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, want 1", r)
	}
	if r := pearson(xs, []float64{8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v, want -1", r)
	}
	if r := pearson(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
	if r := pearson(xs, []float64{1, 2}); r != 0 {
		t.Errorf("mismatched lengths = %v, want 0", r)
	}
}
