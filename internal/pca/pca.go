// Package pca implements the preprocessing and feature-extraction stages
// of the paper's classification center (Section 4.2): zero-mean /
// unit-variance normalization of the expert-selected metrics, and
// Principal Component Analysis selecting the components that explain a
// minimal fraction of the variance (configured in the paper to extract
// exactly two). A variance-ranking automated feature selector implements
// the paper's stated future work.
package pca

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// Normalizer rescales each column (metric) to zero mean and unit
// variance using parameters learned from training data, so test data is
// normalized consistently with training data.
type Normalizer struct {
	zs []stats.ZScore
}

// FitNormalizer learns per-column normalization parameters from a
// row-per-observation matrix.
func FitNormalizer(data *linalg.Matrix) (*Normalizer, error) {
	if data.Rows() == 0 || data.Cols() == 0 {
		return nil, fmt.Errorf("pca: cannot fit normalizer on %dx%d data", data.Rows(), data.Cols())
	}
	zs := make([]stats.ZScore, data.Cols())
	for j := 0; j < data.Cols(); j++ {
		zs[j] = stats.FitZScore(data.Col(j))
	}
	return &Normalizer{zs: zs}, nil
}

// Dims returns the number of columns the normalizer expects.
func (n *Normalizer) Dims() int { return len(n.zs) }

// Apply returns a normalized copy of data.
func (n *Normalizer) Apply(data *linalg.Matrix) (*linalg.Matrix, error) {
	if data.Cols() != len(n.zs) {
		return nil, fmt.Errorf("pca: normalizer fitted on %d columns, got %d", len(n.zs), data.Cols())
	}
	out := linalg.NewMatrix(data.Rows(), data.Cols())
	for i := 0; i < data.Rows(); i++ {
		for j := 0; j < data.Cols(); j++ {
			out.Set(i, j, n.zs[j].Apply(data.At(i, j)))
		}
	}
	return out, nil
}

// ApplyVec normalizes a single observation.
func (n *Normalizer) ApplyVec(x linalg.Vector) (linalg.Vector, error) {
	if len(x) != len(n.zs) {
		return nil, fmt.Errorf("pca: normalizer fitted on %d columns, got vector of %d", len(n.zs), len(x))
	}
	out := make(linalg.Vector, len(x))
	for j, v := range x {
		out[j] = n.zs[j].Apply(v)
	}
	return out, nil
}

// Params exposes the learned per-column z-score parameters.
func (n *Normalizer) Params() []stats.ZScore {
	return append([]stats.ZScore(nil), n.zs...)
}

// Options configures a PCA fit. Exactly one of Components and
// MinFractionVariance should be set; setting neither defaults to the
// paper's q = 2, and setting both is rejected.
type Options struct {
	// Components fixes the number of principal components to keep.
	Components int
	// MinFractionVariance keeps the smallest number of leading
	// components whose cumulative explained variance reaches this
	// fraction (0 < f <= 1).
	MinFractionVariance float64
}

// Model is a fitted PCA: an orthogonal projection from p input metrics
// onto q principal components.
type Model struct {
	// Components is p×q; column i is the i-th principal direction.
	Components *linalg.Matrix
	// Eigenvalues holds all p eigenvalues of the covariance matrix,
	// descending.
	Eigenvalues linalg.Vector
	// Q is the number of retained components.
	Q int
	// colMeans are the training-data column means subtracted before
	// projection.
	colMeans linalg.Vector
}

// Fit computes a PCA of row-per-observation data (typically already
// normalized).
func Fit(data *linalg.Matrix, opts Options) (*Model, error) {
	p := data.Cols()
	if data.Rows() < 2 || p == 0 {
		return nil, fmt.Errorf("pca: need at least 2 observations and 1 metric, got %dx%d", data.Rows(), p)
	}
	if opts.Components != 0 && opts.MinFractionVariance != 0 {
		return nil, fmt.Errorf("pca: set either Components or MinFractionVariance, not both")
	}
	if opts.Components < 0 || opts.Components > p {
		return nil, fmt.Errorf("pca: Components %d out of range [0,%d]", opts.Components, p)
	}
	if opts.MinFractionVariance < 0 || opts.MinFractionVariance > 1 {
		return nil, fmt.Errorf("pca: MinFractionVariance %v out of (0,1]", opts.MinFractionVariance)
	}

	cov := linalg.Covariance(data)
	eig, err := linalg.SymmetricEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}
	// Clamp tiny negative eigenvalues produced by roundoff.
	for i, v := range eig.Values {
		if v < 0 {
			eig.Values[i] = 0
		}
	}

	q := opts.Components
	if q == 0 {
		if opts.MinFractionVariance == 0 {
			q = 2 // the paper's configuration
		} else {
			q = componentsForFraction(eig.Values, opts.MinFractionVariance)
		}
	}
	if q > p {
		q = p
	}
	comps := linalg.NewMatrix(p, q)
	for j := 0; j < q; j++ {
		if err := comps.SetCol(j, eig.Vectors.Col(j)); err != nil {
			return nil, err
		}
	}
	means := make(linalg.Vector, p)
	for j := 0; j < p; j++ {
		means[j] = data.Col(j).Mean()
	}
	return &Model{Components: comps, Eigenvalues: eig.Values, Q: q, colMeans: means}, nil
}

func componentsForFraction(eigenvalues linalg.Vector, fraction float64) int {
	total := eigenvalues.Sum()
	if total <= 0 {
		return 1
	}
	var cum float64
	for i, v := range eigenvalues {
		cum += v
		if cum/total >= fraction-1e-12 {
			return i + 1
		}
	}
	return len(eigenvalues)
}

// ExplainedVariance returns the fraction of total variance explained by
// each eigenvalue.
func (m *Model) ExplainedVariance() []float64 {
	total := m.Eigenvalues.Sum()
	out := make([]float64, len(m.Eigenvalues))
	if total <= 0 {
		return out
	}
	for i, v := range m.Eigenvalues {
		out[i] = v / total
	}
	return out
}

// CumulativeExplained returns the cumulative variance fraction of the
// retained q components.
func (m *Model) CumulativeExplained() float64 {
	ev := m.ExplainedVariance()
	var cum float64
	for i := 0; i < m.Q && i < len(ev); i++ {
		cum += ev[i]
	}
	return cum
}

// Transform projects row-per-observation data onto the retained
// components, producing an (rows × q) matrix.
func (m *Model) Transform(data *linalg.Matrix) (*linalg.Matrix, error) {
	if data.Cols() != m.Components.Rows() {
		return nil, fmt.Errorf("pca: model fitted on %d metrics, got %d", m.Components.Rows(), data.Cols())
	}
	centered := linalg.NewMatrix(data.Rows(), data.Cols())
	for i := 0; i < data.Rows(); i++ {
		for j := 0; j < data.Cols(); j++ {
			centered.Set(i, j, data.At(i, j)-m.colMeans[j])
		}
	}
	return centered.Mul(m.Components)
}

// TransformVec projects one observation onto the retained components.
func (m *Model) TransformVec(x linalg.Vector) (linalg.Vector, error) {
	if len(x) != m.Components.Rows() {
		return nil, fmt.Errorf("pca: model fitted on %d metrics, got vector of %d", m.Components.Rows(), len(x))
	}
	centered := make(linalg.Vector, len(x))
	for j, v := range x {
		centered[j] = v - m.colMeans[j]
	}
	out := make(linalg.Vector, m.Q)
	for j := 0; j < m.Q; j++ {
		d, err := centered.Dot(m.Components.Col(j))
		if err != nil {
			return nil, err
		}
		out[j] = d
	}
	return out, nil
}

// FitSVD computes the same model through a singular value decomposition
// of the centered data matrix instead of the covariance eigenproblem.
// It exists as a numerical cross-check: both routes must agree.
func FitSVD(data *linalg.Matrix, opts Options) (*Model, error) {
	p := data.Cols()
	r := data.Rows()
	if r < 2 || p == 0 {
		return nil, fmt.Errorf("pca: need at least 2 observations and 1 metric, got %dx%d", r, p)
	}
	if r < p {
		return nil, fmt.Errorf("pca: FitSVD needs rows >= cols, got %dx%d", r, p)
	}
	means := make(linalg.Vector, p)
	for j := 0; j < p; j++ {
		means[j] = data.Col(j).Mean()
	}
	centered := linalg.NewMatrix(r, p)
	for i := 0; i < r; i++ {
		for j := 0; j < p; j++ {
			centered.Set(i, j, data.At(i, j)-means[j])
		}
	}
	svd, err := linalg.SVD(centered)
	if err != nil {
		return nil, fmt.Errorf("pca: svd: %w", err)
	}
	eigenvalues := make(linalg.Vector, p)
	for i, s := range svd.S {
		eigenvalues[i] = s * s / float64(r-1)
	}
	q := opts.Components
	if opts.Components != 0 && opts.MinFractionVariance != 0 {
		return nil, fmt.Errorf("pca: set either Components or MinFractionVariance, not both")
	}
	if q == 0 {
		if opts.MinFractionVariance == 0 {
			q = 2
		} else {
			q = componentsForFraction(eigenvalues, opts.MinFractionVariance)
		}
	}
	if q > p {
		q = p
	}
	comps := linalg.NewMatrix(p, q)
	for j := 0; j < q; j++ {
		if err := comps.SetCol(j, svd.V.Col(j)); err != nil {
			return nil, err
		}
	}
	return &Model{Components: comps, Eigenvalues: eigenvalues, Q: q, colMeans: means}, nil
}

// AgreesWith reports whether two models span the same principal
// subspace, comparing each retained direction up to sign within tol.
func (m *Model) AgreesWith(o *Model, tol float64) bool {
	if m.Q != o.Q || m.Components.Rows() != o.Components.Rows() {
		return false
	}
	for j := 0; j < m.Q; j++ {
		a, b := m.Components.Col(j), o.Components.Col(j)
		dot, err := a.Dot(b)
		if err != nil {
			return false
		}
		if math.Abs(math.Abs(dot)-1) > tol {
			return false
		}
	}
	return true
}
