package pca

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// SelectFeatures implements the automated feature selection the paper
// leaves as future work, following the relevance/redundancy principle it
// cites (Yu & Liu 2004): rank metrics by variance after normalization
// (relevance proxy — constant metrics carry no class signal), then greedily
// keep metrics whose absolute Pearson correlation with every
// already-kept metric stays below maxCorrelation (redundancy filter).
// It returns the indices of the selected columns, in selection order.
func SelectFeatures(data *linalg.Matrix, maxKeep int, maxCorrelation float64) ([]int, error) {
	p := data.Cols()
	if p == 0 || data.Rows() < 2 {
		return nil, fmt.Errorf("pca: cannot select features from %dx%d data", data.Rows(), p)
	}
	if maxKeep <= 0 || maxKeep > p {
		maxKeep = p
	}
	if maxCorrelation <= 0 || maxCorrelation > 1 {
		return nil, fmt.Errorf("pca: maxCorrelation %v out of (0,1]", maxCorrelation)
	}

	cols := make([][]float64, p)
	variances := make([]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = data.Col(j)
		variances[j] = stats.Variance(cols[j])
	}
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return variances[order[a]] > variances[order[b]] })

	var kept []int
	for _, j := range order {
		if len(kept) >= maxKeep {
			break
		}
		if variances[j] <= 0 {
			continue // constant metric: irrelevant
		}
		redundant := false
		for _, k := range kept {
			if math.Abs(pearson(cols[j], cols[k])) > maxCorrelation {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, j)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("pca: no informative features found")
	}
	return kept, nil
}

// pearson returns the Pearson correlation coefficient of two
// equal-length series, or 0 when either is constant.
func pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
