package pca

import (
	"fmt"

	"repro/internal/linalg"
)

// Affine is the classification pipeline's preprocess → normalize →
// PCA-project chain collapsed into a single affine map feat = W·x + b.
//
// Every stage of the staged pipeline is affine in the input x (the
// p expert metrics of one snapshot):
//
//	normalize:  z_i = (x_i − μ_i) / σ_i        (z-score parameters μ, σ)
//	center:     c_i = z_i − m_i                (PCA training column means m)
//	project:    f_j = Σ_i c_i · C_ij           (component matrix C, p×q)
//
// so the composition is itself affine:
//
//	f_j = Σ_i (C_ij/σ_i) · x_i  −  Σ_i C_ij · (μ_i/σ_i + m_i)
//	    =      W_ji · x_i       +  b_j
//
// with W the dense q×p fused weight matrix and b the fused q-vector
// offset. Both are computed once at train (or load) time; applying the
// chain to a snapshot is then one allocation-free fused mat-vec.
type Affine struct {
	w *linalg.Matrix // q×p fused weights
	b linalg.Vector  // q fused offset
}

// Fuse collapses a fitted normalizer and PCA model into the single
// affine map described above. The normalizer and model must have been
// fitted on the same p metrics.
func Fuse(n *Normalizer, m *Model) (*Affine, error) {
	if n == nil || m == nil {
		return nil, fmt.Errorf("pca: fuse of nil normalizer or model")
	}
	p := len(n.zs)
	if m.Components.Rows() != p {
		return nil, fmt.Errorf("pca: fuse of %d-metric normalizer with %d-metric model", p, m.Components.Rows())
	}
	if len(m.colMeans) != p {
		return nil, fmt.Errorf("pca: model has %d column means for %d metrics", len(m.colMeans), p)
	}
	q := m.Q
	w := linalg.NewMatrix(q, p)
	b := make(linalg.Vector, q)
	for j := 0; j < q; j++ {
		var bj float64
		for i := 0; i < p; i++ {
			z := n.zs[i]
			if z.StdDev == 0 {
				return nil, fmt.Errorf("pca: metric %d has zero normalization stddev", i)
			}
			cij := m.Components.At(i, j)
			w.Set(j, i, cij/z.StdDev)
			bj -= cij * (z.Mean/z.StdDev + m.colMeans[i])
		}
		b[j] = bj
	}
	return &Affine{w: w, b: b}, nil
}

// P returns the input dimension (expert metric count).
func (a *Affine) P() int { return a.w.Cols() }

// Q returns the output dimension (retained component count).
func (a *Affine) Q() int { return a.w.Rows() }

// ApplyInto computes dst = W·x + b without allocating. dst must have
// length Q.
func (a *Affine) ApplyInto(dst, x linalg.Vector) error {
	return a.w.AffineInto(dst, x, a.b)
}

// GatherInto computes dst = W·g + b where g[j] = values[idx[j]],
// fusing the preprocessor's metric gather into the kernel so the
// expert sub-vector is never materialized. Nothing is allocated.
func (a *Affine) GatherInto(dst linalg.Vector, values []float64, idx []int) error {
	return a.w.AffineGatherInto(dst, values, idx, a.b)
}

// ApplyRows applies the fused map to every row of src, returning the
// src.Rows()×Q feature matrix — the batch form used when classifying a
// whole trace.
func (a *Affine) ApplyRows(src *linalg.Matrix) (*linalg.Matrix, error) {
	dst := linalg.NewMatrix(src.Rows(), a.Q())
	if err := a.w.AffineRowsInto(dst, src, a.b); err != nil {
		return nil, err
	}
	return dst, nil
}

// Params returns deep copies of the fused weights and offset, for
// inspection and tests.
func (a *Affine) Params() (*linalg.Matrix, linalg.Vector) {
	return a.w.Clone(), a.b.Clone()
}
