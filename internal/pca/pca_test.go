package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randomData(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64()*float64(j+1)+float64(j)*3)
		}
	}
	return m
}

func TestFitNormalizer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randomData(rng, 200, 4)
	n, err := FitNormalizer(data)
	if err != nil {
		t.Fatalf("FitNormalizer: %v", err)
	}
	if n.Dims() != 4 {
		t.Fatalf("Dims = %d", n.Dims())
	}
	norm, err := n.Apply(data)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		col := linalg.Vector(norm.Col(j))
		if math.Abs(col.Mean()) > 1e-9 {
			t.Errorf("column %d mean = %v, want ~0", j, col.Mean())
		}
	}
}

func TestNormalizerApplyVecMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randomData(rng, 50, 3)
	n, err := FitNormalizer(data)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := n.Apply(data)
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.ApplyVec(data.Row(7))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(norm.Row(7), 1e-12) {
		t.Errorf("ApplyVec = %v, row-apply = %v", v, norm.Row(7))
	}
}

func TestNormalizerValidation(t *testing.T) {
	if _, err := FitNormalizer(linalg.NewMatrix(0, 3)); err == nil {
		t.Error("empty data: want error")
	}
	rng := rand.New(rand.NewSource(3))
	n, err := FitNormalizer(randomData(rng, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Apply(linalg.NewMatrix(5, 3)); err == nil {
		t.Error("wrong width: want error")
	}
	if _, err := n.ApplyVec(linalg.Vector{1}); err == nil {
		t.Error("wrong vector length: want error")
	}
}

// Build data with a dominant direction: points along (1,1)/sqrt(2) plus
// small orthogonal noise.
func anisotropicData(rng *rand.Rand, n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		t := rng.NormFloat64() * 10
		o := rng.NormFloat64() * 0.5
		m.Set(i, 0, (t-o)/math.Sqrt2)
		m.Set(i, 1, (t+o)/math.Sqrt2)
	}
	return m
}

func TestFitFindsDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := anisotropicData(rng, 500)
	m, err := Fit(data, Options{Components: 1})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	pc1 := m.Components.Col(0)
	want := linalg.Vector{1 / math.Sqrt2, 1 / math.Sqrt2}
	dot, _ := pc1.Dot(want)
	if math.Abs(math.Abs(dot)-1) > 1e-2 {
		t.Errorf("PC1 = %v, want ~%v", pc1, want)
	}
	if ev := m.ExplainedVariance(); ev[0] < 0.95 {
		t.Errorf("PC1 explains %v of variance, want > 0.95", ev[0])
	}
}

func TestFitDefaultsToTwoComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := Fit(randomData(rng, 100, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Q != 2 {
		t.Errorf("Q = %d, want the paper's default 2", m.Q)
	}
	if m.Components.Rows() != 8 || m.Components.Cols() != 2 {
		t.Errorf("components shape %dx%d", m.Components.Rows(), m.Components.Cols())
	}
}

func TestFitMinFractionVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := anisotropicData(rng, 300)
	m, err := Fit(data, Options{MinFractionVariance: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Q != 1 {
		t.Errorf("Q = %d, want 1 (PC1 alone explains >90%%)", m.Q)
	}
	m2, err := Fit(data, Options{MinFractionVariance: 0.9999999})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Q != 2 {
		t.Errorf("Q = %d, want 2 for near-total variance", m2.Q)
	}
}

func TestFitOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randomData(rng, 20, 3)
	if _, err := Fit(data, Options{Components: 2, MinFractionVariance: 0.9}); err == nil {
		t.Error("both options: want error")
	}
	if _, err := Fit(data, Options{Components: -1}); err == nil {
		t.Error("negative components: want error")
	}
	if _, err := Fit(data, Options{Components: 99}); err == nil {
		t.Error("too many components: want error")
	}
	if _, err := Fit(data, Options{MinFractionVariance: 1.5}); err == nil {
		t.Error("fraction > 1: want error")
	}
	if _, err := Fit(linalg.NewMatrix(1, 3), Options{}); err == nil {
		t.Error("single row: want error")
	}
}

func TestTransformReducesDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := randomData(rng, 100, 8)
	m, err := Fit(data, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Transform(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 100 || out.Cols() != 2 {
		t.Fatalf("transformed shape %dx%d, want 100x2", out.Rows(), out.Cols())
	}
	// Projections onto orthonormal directions of centered data have
	// zero mean.
	for j := 0; j < 2; j++ {
		if mean := linalg.Vector(out.Col(j)).Mean(); math.Abs(mean) > 1e-9 {
			t.Errorf("projected column %d mean = %v", j, mean)
		}
	}
	if _, err := m.Transform(linalg.NewMatrix(5, 3)); err == nil {
		t.Error("wrong width: want error")
	}
}

func TestTransformVecMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randomData(rng, 60, 5)
	m, err := Fit(data, Options{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Transform(data)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.TransformVec(data.Row(11))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(full.Row(11), 1e-10) {
		t.Errorf("TransformVec = %v, Transform row = %v", v, full.Row(11))
	}
	if _, err := m.TransformVec(linalg.Vector{1}); err == nil {
		t.Error("wrong length: want error")
	}
}

// Property: covariance-eigen PCA and SVD PCA agree on the principal
// subspace and eigenvalues — the cross-check that validates the manual
// implementation.
func TestFitAgreesWithFitSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		rows := 30 + rng.Intn(100)
		cols := 2 + rng.Intn(6)
		data := randomData(rng, rows, cols)
		a, err := Fit(data, Options{Components: 2})
		if err != nil {
			t.Fatalf("Fit: %v", err)
		}
		b, err := FitSVD(data, Options{Components: 2})
		if err != nil {
			t.Fatalf("FitSVD: %v", err)
		}
		if !a.AgreesWith(b, 1e-6) {
			t.Fatalf("trial %d: eigen and SVD PCA disagree on the subspace", trial)
		}
		for i := 0; i < cols; i++ {
			if math.Abs(a.Eigenvalues[i]-b.Eigenvalues[i]) > 1e-7*(1+a.Eigenvalues[i]) {
				t.Fatalf("trial %d: eigenvalue %d: %v vs %v", trial, i, a.Eigenvalues[i], b.Eigenvalues[i])
			}
		}
	}
}

// Property: the total variance is preserved by the eigendecomposition
// (sum of eigenvalues equals sum of column variances).
func TestEigenvaluesSumToTotalVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randomData(rng, 200, 6)
	m, err := Fit(data, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	var totalVar float64
	for j := 0; j < 6; j++ {
		col := data.Col(j)
		mean := linalg.Vector(col).Mean()
		var s float64
		for _, v := range col {
			d := v - mean
			s += d * d
		}
		totalVar += s / float64(len(col)-1)
	}
	if math.Abs(m.Eigenvalues.Sum()-totalVar) > 1e-8*(1+totalVar) {
		t.Errorf("eigenvalue sum %v != total variance %v", m.Eigenvalues.Sum(), totalVar)
	}
}

func TestCumulativeExplained(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := anisotropicData(rng, 300)
	m, err := Fit(data, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CumulativeExplained(); math.Abs(got-1) > 1e-9 {
		t.Errorf("keeping all components explains %v, want 1", got)
	}
}
