package resilience

import (
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func newTestBreaker(c *fakeClock, failures int, openFor time.Duration) *Breaker {
	return NewBreaker(BreakerConfig{Failures: failures, OpenFor: openFor, Now: c.now})
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock, 3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state after 3/3 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Error("open breaker allowed a request")
	}
	if got := b.Opens(); got != 1 {
		t.Errorf("Opens = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock, 3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (success reset the count)", got)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	clock := newFakeClock()
	var transitions []State
	b := NewBreaker(BreakerConfig{
		Failures: 1,
		OpenFor:  10 * time.Second,
		Now:      clock.now,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, to)
		},
	})
	b.Failure() // trips immediately
	if b.Allow() {
		t.Fatal("open breaker allowed a request before OpenFor elapsed")
	}
	clock.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("expired open breaker refused the half-open probe")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	want := []State{Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock, 1, 10*time.Second)
	b.Failure()
	clock.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("no half-open probe")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if b.Allow() {
		t.Error("reopened breaker allowed a request immediately")
	}
	// The reopen restarts the open interval.
	clock.advance(10 * time.Second)
	if !b.Allow() {
		t.Error("reopened breaker never reached half-open again")
	}
	if got := b.Opens(); got != 2 {
		t.Errorf("Opens = %d, want 2", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", HalfOpen: "half-open", Open: "open"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: time.Second, Max: 10 * time.Second}
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		10 * time.Second, 10 * time.Second,
	}
	for i, w := range want {
		if got := b.Next(i + 1); got != w {
			t.Errorf("Next(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Attempts below 1 behave like the first.
	if got := b.Next(0); got != time.Second {
		t.Errorf("Next(0) = %v, want %v", got, time.Second)
	}
}

func TestBackoffHugeAttemptDoesNotOverflow(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute}
	if got := b.Next(200); got != time.Minute {
		t.Errorf("Next(200) = %v, want %v", got, time.Minute)
	}
}

func TestBackoffJitterStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := Backoff{Base: time.Second, Max: time.Minute, Jitter: 0.5, Rand: rng}
	for i := 0; i < 100; i++ {
		d := b.Next(2) // nominal 2s, band [1s, 3s]
		if d < time.Second || d > 3*time.Second {
			t.Fatalf("jittered delay %v outside [1s, 3s]", d)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.Next(1); got != time.Second {
		t.Errorf("zero-value Next(1) = %v, want 1s", got)
	}
	if got := b.Next(100); got != 60*time.Second {
		t.Errorf("zero-value Next(100) = %v, want 60s", got)
	}
}
