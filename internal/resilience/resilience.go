// Package resilience provides the small fault-handling primitives the
// classification daemon composes around its ingest paths: a per-source
// circuit breaker (closed → open → half-open probe) and an exponential
// backoff schedule with jitter. Both are deterministic under injected
// clocks/randomness so chaos tests can assert exact state transitions.
package resilience

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes every request through; consecutive failures are
	// counted toward the trip threshold.
	Closed State = iota
	// HalfOpen admits probe requests after the open interval elapsed; a
	// success closes the breaker, a failure reopens it.
	HalfOpen
	// Open rejects every request until the open interval elapses.
	Open
)

// String returns the conventional lower-case state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the breaker open.
	// Zero means 5.
	Failures int
	// OpenFor is how long a tripped breaker rejects requests before
	// letting a half-open probe through. Zero means 30 seconds.
	OpenFor time.Duration
	// Now supplies the clock; tests inject fake time. Nil means time.Now.
	Now func() time.Time
	// OnStateChange, when non-nil, observes every transition. It is
	// called without the breaker's lock held.
	OnStateChange func(from, to State)
}

// Breaker is a circuit breaker guarding one upstream source. A caller
// asks Allow before each attempt and reports the outcome with Success
// or Failure; while the breaker is open, Allow answers false so the
// caller skips the attempt entirely instead of burning a timeout on a
// source known to be down. It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	opens    int64     // total trips, for observability
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed, transitioning an expired
// open breaker to half-open (the returned true is then the probe).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.setStateLocked(HalfOpen)
	}
	allowed := b.state != Open
	b.mu.Unlock()
	return allowed
}

// Success reports a completed request: a half-open probe that succeeds
// closes the breaker, and any success resets the failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	if b.state != Closed {
		b.setStateLocked(Closed)
	}
	b.mu.Unlock()
}

// Failure reports a failed request: a failed half-open probe reopens
// the breaker immediately, and the trip threshold of consecutive
// failures opens a closed one.
func (b *Breaker) Failure() {
	b.mu.Lock()
	switch b.state {
	case HalfOpen:
		b.tripLocked()
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Failures {
			b.tripLocked()
		}
	}
	b.mu.Unlock()
}

// tripLocked opens the breaker. Caller holds b.mu.
func (b *Breaker) tripLocked() {
	b.failures = 0
	b.openedAt = b.cfg.Now()
	b.opens++
	b.setStateLocked(Open)
}

// setStateLocked records a transition and schedules the observer
// callback. Caller holds b.mu; the callback runs synchronously but
// outside the critical section would risk reordering under concurrent
// transitions, so it runs inline — observers must not call back into
// the breaker.
func (b *Breaker) setStateLocked(to State) {
	from := b.state
	b.state = to
	if b.cfg.OnStateChange != nil && from != to {
		b.cfg.OnStateChange(from, to)
	}
}

// State returns the breaker's current position, applying the
// open→half-open expiry the same way Allow does so observers never see
// a stale Open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.setStateLocked(HalfOpen)
	}
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Backoff computes an exponential retry schedule with jitter:
// attempt n (1-based) waits Base·2^(n-1), capped at Max, then spread by
// ±Jitter so a fleet of pollers hitting the same dead aggregator does
// not retry in lockstep.
type Backoff struct {
	// Base is the first retry delay. Zero means 1 second.
	Base time.Duration
	// Max caps the delay. Zero means 60 seconds.
	Max time.Duration
	// Jitter is the fraction of the delay randomized around it, in
	// [0,1). Zero means no jitter (fully deterministic).
	Jitter float64
	// Rand supplies the jitter randomness; tests inject a seeded source.
	// Nil means the global math/rand source.
	Rand *rand.Rand
}

// Next returns the delay before retry attempt n (1-based). Attempts
// below 1 are treated as 1.
func (b Backoff) Next(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Second
	}
	max := b.Max
	if max <= 0 {
		max = 60 * time.Second
	}
	if base > max {
		base = max
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d < 0 { // overflow guard
			d = max
			break
		}
	}
	if b.Jitter > 0 {
		f := b.Jitter
		if f >= 1 {
			f = 0.999
		}
		var u float64
		if b.Rand != nil {
			u = b.Rand.Float64()
		} else {
			u = rand.Float64()
		}
		// Spread uniformly over [d·(1-f), d·(1+f)].
		d = time.Duration(float64(d) * (1 - f + 2*f*u))
	}
	if d > max {
		d = max
	}
	if d < 0 {
		d = 0
	}
	return d
}
