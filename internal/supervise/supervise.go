// Package supervise keeps a daemon's long-lived background goroutines
// alive and observable. Every loop the daemon depends on — pollers,
// checkpointers, compactors, scrubbers — runs as a supervised task: a
// panic is captured and logged instead of killing the process, the
// task restarts under jittered exponential backoff
// (internal/resilience), and a task that panics persistently escalates
// so readiness probes can report the daemon degraded instead of
// silently running without, say, its checkpointer.
//
// Tasks additionally carry a heartbeat: the loop calls Task.Beat every
// iteration, and a task whose last beat is older than its declared
// heartbeat deadline is reported wedged — the failure mode restarts
// cannot fix (a goroutine blocked on a lock or a dead disk, e.g. a
// checkpoint quiesce that never drains) is detected and surfaced
// instead of silently stalling. Wedge state is derived from the
// heartbeat timestamp at read time, so probes see it immediately and
// deterministically; a background monitor logs the transitions.
package supervise

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// Status is a task's supervision state. Wedged is derived from the
// heartbeat at read time and never stored.
type Status int32

const (
	// StatusRunning: the task goroutine is (as far as supervision
	// knows) executing its loop.
	StatusRunning Status = iota
	// StatusRestarting: the task panicked and is sleeping out its
	// restart backoff.
	StatusRestarting
	// StatusEscalated: the task panicked MaxRestarts times in a row.
	// It keeps restarting — a later healthy run de-escalates — but the
	// daemon should report itself degraded while any task is here.
	StatusEscalated
	// StatusStopped: the task returned normally or the supervisor shut
	// down.
	StatusStopped
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusRestarting:
		return "restarting"
	case StatusEscalated:
		return "escalated"
	case StatusStopped:
		return "stopped"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// Config configures a Supervisor. The zero value is usable.
type Config struct {
	// Backoff schedules restart delays after panics. Zero-valued fields
	// get defaults (base 1s, max 1m, ±25% jitter).
	Backoff resilience.Backoff
	// MaxRestarts is how many consecutive panics escalate a task
	// (default 5). Escalation does not stop the restart loop; it flips
	// the task's status so readiness can degrade.
	MaxRestarts int
	// CheckEvery is the heartbeat monitor's logging cadence (default
	// 1s). Wedge state itself is derived at read time; the monitor only
	// logs edges.
	CheckEvery time.Duration
	// Now is the clock (default time.Now). Injectable for tests.
	Now func() time.Time
	// Logf receives supervision events (default: drop).
	Logf func(format string, args ...any)
	// OnEscalate fires once per escalation edge, outside any lock.
	OnEscalate func(task string, restarts int64, lastPanic string)
	// Intercept, when set, runs at the top of every task attempt. It
	// exists for fault injection: a chaos harness can panic or block
	// inside it to simulate a crashing or wedged task deterministically.
	Intercept func(task string)
}

// Task is one supervised goroutine's state. All fields are updated
// with atomics; Snapshot readers never block the task.
type Task struct {
	name      string
	heartbeat time.Duration // wedge deadline; 0 disables

	status      atomic.Int32
	restarts    atomic.Int64 // lifetime restarts
	consecutive atomic.Int64 // panics since the last healthy beat
	lastBeat    atomic.Int64 // unix nanos of the last Beat
	lastPanicAt atomic.Int64 // unix nanos of the last captured panic
	lastPanic   atomic.Value // string: message of the last captured panic
	wedgedLog   atomic.Bool  // monitor's edge-detection latch

	sup *Supervisor
}

// Beat records liveness. Loops call it once per iteration; it also
// clears restart escalation, because a task that reached its loop body
// is healthy again.
func (t *Task) Beat() {
	t.lastBeat.Store(t.sup.now().UnixNano())
	if t.consecutive.Load() != 0 {
		t.consecutive.Store(0)
	}
	// A beat proves the task is doing work again: de-escalate.
	if t.status.CompareAndSwap(int32(StatusEscalated), int32(StatusRunning)) {
		t.sup.cfg.Logf("supervise: task %s recovered (de-escalated)", t.name)
	}
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// TaskOptions declares per-task supervision parameters.
type TaskOptions struct {
	// Heartbeat is the wedge deadline: the task counts as wedged when
	// its last Beat is older than this. Zero disables wedge detection
	// (for loops with no natural cadence). Set it to several times the
	// loop's tick so a slow-but-live loop is never flagged.
	Heartbeat time.Duration
}

// TaskState is one task's observable state, exported for /metricsz and
// /v1/status.
type TaskState struct {
	Name     string `json:"name"`
	Status   string `json:"status"`
	Restarts int64  `json:"restarts"`
	// Wedged is true when the task's heartbeat deadline has lapsed.
	Wedged bool `json:"wedged,omitempty"`
	// LastPanic is the last captured panic message, if any.
	LastPanic       string `json:"last_panic,omitempty"`
	LastPanicUnixNS int64  `json:"last_panic_unix_ns,omitempty"`
	LastBeatUnixNS  int64  `json:"last_beat_unix_ns,omitempty"`
}

// Supervisor runs tasks. Create with New, launch with Go, stop with
// Stop.
type Supervisor struct {
	cfg Config

	mu    sync.Mutex
	tasks []*Task

	stopc   chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	panics      atomic.Int64 // lifetime captured panics
	escalations atomic.Int64 // lifetime escalation edges
	wedges      atomic.Int64 // lifetime wedge-detection edges (monitor)
}

// New builds a Supervisor and starts its heartbeat monitor.
func New(cfg Config) *Supervisor {
	if cfg.Backoff.Base <= 0 {
		cfg.Backoff.Base = time.Second
	}
	if cfg.Backoff.Max <= 0 {
		cfg.Backoff.Max = time.Minute
	}
	if cfg.Backoff.Jitter == 0 {
		cfg.Backoff.Jitter = 0.25
	}
	if cfg.Backoff.Rand == nil {
		cfg.Backoff.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 5
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Supervisor{cfg: cfg, stopc: make(chan struct{})}
	s.wg.Add(1)
	go s.monitor()
	return s
}

func (s *Supervisor) now() time.Time { return s.cfg.Now() }

// Stop shuts the supervisor down: the stop channel every task run
// received closes, and Stop waits for the tasks to return — bounded by
// ctx, because a wedged task by definition may never return. On ctx
// expiry it reports which tasks are still running and abandons them.
func (s *Supervisor) Stop(ctx context.Context) error {
	if s.stopped.CompareAndSwap(false, true) {
		close(s.stopc)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		var stuck []string
		for _, st := range s.Snapshot() {
			if st.Status != StatusStopped.String() {
				stuck = append(stuck, st.Name)
			}
		}
		return fmt.Errorf("supervise: shutdown abandoned %d task(s) still running: %v", len(stuck), stuck)
	}
}

// Go launches a supervised task. run receives the supervisor's stop
// channel and its Task handle; it should select on stop and call
// t.Beat() every loop iteration. A run that returns normally stops the
// task for good; a panic restarts it under backoff.
func (s *Supervisor) Go(name string, opts TaskOptions, run func(stop <-chan struct{}, t *Task)) *Task {
	t := &Task{name: name, heartbeat: opts.Heartbeat, sup: s}
	t.lastBeat.Store(s.now().UnixNano())
	s.mu.Lock()
	s.tasks = append(s.tasks, t)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.runTask(t, run)
	return t
}

// runTask is the per-task restart loop.
func (s *Supervisor) runTask(t *Task, run func(stop <-chan struct{}, t *Task)) {
	defer s.wg.Done()
	for {
		panicked := s.attempt(t, run)
		if !panicked || s.stopped.Load() {
			t.status.Store(int32(StatusStopped))
			return
		}
		t.restarts.Add(1)
		n := t.consecutive.Add(1)
		s.panics.Add(1)
		if n == int64(s.cfg.MaxRestarts) {
			t.status.Store(int32(StatusEscalated))
			s.escalations.Add(1)
			msg, _ := t.lastPanic.Load().(string)
			s.cfg.Logf("supervise: task %s ESCALATED after %d consecutive panics (last: %s); restarts continue but the daemon should report degraded", t.name, n, msg)
			if s.cfg.OnEscalate != nil {
				s.cfg.OnEscalate(t.name, t.restarts.Load(), msg)
			}
		} else if t.status.Load() != int32(StatusEscalated) {
			t.status.Store(int32(StatusRestarting))
		}
		// Sleep out the backoff, stop-aware. Attempts are 1-based for
		// Backoff.Next; cap the exponent input so the delay saturates at
		// Backoff.Max instead of overflowing.
		attempt := int(n)
		if attempt > 30 {
			attempt = 30
		}
		delay := s.cfg.Backoff.Next(attempt)
		timer := time.NewTimer(delay)
		select {
		case <-s.stopc:
			timer.Stop()
			t.status.Store(int32(StatusStopped))
			return
		case <-timer.C:
		}
	}
}

// attempt runs one task attempt, capturing a panic. It reports whether
// the attempt panicked.
func (s *Supervisor) attempt(t *Task, run func(stop <-chan struct{}, t *Task)) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			msg := fmt.Sprintf("%v", r)
			t.lastPanic.Store(msg)
			t.lastPanicAt.Store(s.now().UnixNano())
			s.cfg.Logf("supervise: task %s panicked: %s\n%s", t.name, msg, debug.Stack())
		}
	}()
	if t.status.Load() != int32(StatusEscalated) {
		t.status.Store(int32(StatusRunning))
	}
	if s.cfg.Intercept != nil {
		s.cfg.Intercept(t.name)
	}
	run(s.stopc, t)
	return false
}

// wedged reports whether t's heartbeat deadline has lapsed. Only a
// task that believes it is running can be wedged — one sleeping out a
// restart backoff or already stopped is not.
func (s *Supervisor) wedged(t *Task, now time.Time) bool {
	if t.heartbeat <= 0 {
		return false
	}
	st := Status(t.status.Load())
	if st != StatusRunning && st != StatusEscalated {
		return false
	}
	return now.Sub(time.Unix(0, t.lastBeat.Load())) > t.heartbeat
}

// Snapshot returns every task's observable state, wedge status derived
// against the current clock.
func (s *Supervisor) Snapshot() []TaskState {
	s.mu.Lock()
	tasks := make([]*Task, len(s.tasks))
	copy(tasks, s.tasks)
	s.mu.Unlock()
	now := s.now()
	out := make([]TaskState, 0, len(tasks))
	for _, t := range tasks {
		msg, _ := t.lastPanic.Load().(string)
		out = append(out, TaskState{
			Name:            t.name,
			Status:          Status(t.status.Load()).String(),
			Restarts:        t.restarts.Load(),
			Wedged:          s.wedged(t, now),
			LastPanic:       msg,
			LastPanicUnixNS: t.lastPanicAt.Load(),
			LastBeatUnixNS:  t.lastBeat.Load(),
		})
	}
	return out
}

// Unhealthy returns the names of currently wedged and currently
// escalated tasks — the readiness probe's input.
func (s *Supervisor) Unhealthy() (wedged, escalated []string) {
	s.mu.Lock()
	tasks := make([]*Task, len(s.tasks))
	copy(tasks, s.tasks)
	s.mu.Unlock()
	now := s.now()
	for _, t := range tasks {
		if s.wedged(t, now) {
			wedged = append(wedged, t.name)
		}
		if Status(t.status.Load()) == StatusEscalated {
			escalated = append(escalated, t.name)
		}
	}
	return wedged, escalated
}

// Panics, Escalations, and Wedges report lifetime event counts for
// metrics.
func (s *Supervisor) Panics() int64      { return s.panics.Load() }
func (s *Supervisor) Escalations() int64 { return s.escalations.Load() }
func (s *Supervisor) Wedges() int64      { return s.wedges.Load() }

// monitor logs wedge transitions. Detection itself happens at read
// time in Snapshot/Unhealthy; this loop only makes the state loud.
func (s *Supervisor) monitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
		}
		s.mu.Lock()
		tasks := make([]*Task, len(s.tasks))
		copy(tasks, s.tasks)
		s.mu.Unlock()
		now := s.now()
		for _, task := range tasks {
			w := s.wedged(task, now)
			if w && task.wedgedLog.CompareAndSwap(false, true) {
				s.wedges.Add(1)
				age := now.Sub(time.Unix(0, task.lastBeat.Load()))
				s.cfg.Logf("supervise: task %s WEDGED: no heartbeat for %v (deadline %v)", task.name, age.Round(time.Millisecond), task.heartbeat)
			} else if !w && task.wedgedLog.CompareAndSwap(true, false) {
				s.cfg.Logf("supervise: task %s unwedged: heartbeat resumed", task.name)
			}
		}
	}
}
