package supervise

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

// testConfig returns a supervisor config with microscopic backoff so
// restart loops complete in test time, and a logger that records
// events.
func testConfig(t *testing.T) (Config, *logRecorder) {
	t.Helper()
	lr := &logRecorder{}
	return Config{
		Backoff: resilience.Backoff{
			Base:   time.Microsecond,
			Max:    10 * time.Microsecond,
			Jitter: 0.01,
			Rand:   rand.New(rand.NewSource(1)),
		},
		MaxRestarts: 3,
		CheckEvery:  time.Millisecond,
		Logf:        lr.logf,
	}, lr
}

type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (l *logRecorder) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logRecorder) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, sub) {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPanicCaptureAndRestart(t *testing.T) {
	cfg, lr := testConfig(t)
	s := New(cfg)
	defer mustStop(t, s)

	var runs atomic.Int64
	s.Go("flappy", TaskOptions{}, func(stop <-chan struct{}, task *Task) {
		if runs.Add(1) <= 2 {
			panic("injected")
		}
		task.Beat()
		<-stop
	})
	waitFor(t, "two restarts", func() bool { return runs.Load() >= 3 })
	if got := s.Panics(); got != 2 {
		t.Errorf("panics = %d, want 2", got)
	}
	waitFor(t, "running status", func() bool {
		st := s.Snapshot()
		return len(st) == 1 && st[0].Status == "running"
	})
	st := s.Snapshot()[0]
	if st.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", st.Restarts)
	}
	if st.LastPanic != "injected" || st.LastPanicUnixNS == 0 {
		t.Errorf("last panic = %q at %d, want recorded", st.LastPanic, st.LastPanicUnixNS)
	}
	if !lr.contains("task flappy panicked") {
		t.Error("panic was not logged")
	}
}

func TestEscalationAndDeescalation(t *testing.T) {
	cfg, lr := testConfig(t)
	var escalated atomic.Int64
	cfg.OnEscalate = func(task string, restarts int64, lastPanic string) {
		escalated.Add(1)
	}
	s := New(cfg)
	defer mustStop(t, s)

	var heal atomic.Bool
	var runs atomic.Int64
	s.Go("crashy", TaskOptions{}, func(stop <-chan struct{}, task *Task) {
		runs.Add(1)
		if !heal.Load() {
			panic("crash loop")
		}
		task.Beat()
		<-stop
	})

	// MaxRestarts consecutive panics escalate exactly once…
	waitFor(t, "escalation", func() bool {
		_, esc := s.Unhealthy()
		return len(esc) == 1 && esc[0] == "crashy"
	})
	if got := escalated.Load(); got != 1 {
		t.Errorf("OnEscalate fired %d times, want 1", got)
	}
	if !lr.contains("ESCALATED") {
		t.Error("escalation was not logged")
	}
	// …but restarts continue past escalation…
	prev := runs.Load()
	waitFor(t, "restarts past escalation", func() bool { return runs.Load() > prev })

	// …and a healthy run de-escalates.
	heal.Store(true)
	waitFor(t, "de-escalation", func() bool {
		_, esc := s.Unhealthy()
		return len(esc) == 0
	})
	if st := s.Snapshot()[0]; st.Status != "running" {
		t.Errorf("status after healing = %s, want running", st.Status)
	}
}

func TestWedgeDetection(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	cfg, lr := testConfig(t)
	cfg.Now = clock
	s := New(cfg)
	defer mustStop(t, s)

	release := make(chan struct{})
	beating := make(chan struct{}, 16)
	s.Go("sticky", TaskOptions{Heartbeat: 10 * time.Second}, func(stop <-chan struct{}, task *Task) {
		task.Beat()
		beating <- struct{}{}
		<-release // wedge: no beats while blocked here
		task.Beat()
		beating <- struct{}{}
		<-stop
	})
	<-beating

	// Within the deadline: healthy.
	advance(5 * time.Second)
	if w, _ := s.Unhealthy(); len(w) != 0 {
		t.Fatalf("wedged within deadline: %v", w)
	}
	// Past the deadline: wedged, and the monitor logs it.
	advance(10 * time.Second)
	if w, _ := s.Unhealthy(); len(w) != 1 || w[0] != "sticky" {
		t.Fatalf("wedged = %v, want [sticky]", w)
	}
	if !s.Snapshot()[0].Wedged {
		t.Error("snapshot does not show the task wedged")
	}
	waitFor(t, "wedge log", func() bool { return lr.contains("WEDGED") })
	if s.Wedges() == 0 {
		t.Error("wedge edge not counted")
	}

	// Unstick: the next beat clears the wedge.
	close(release)
	<-beating
	if w, _ := s.Unhealthy(); len(w) != 0 {
		t.Errorf("still wedged after heartbeat resumed: %v", w)
	}
}

func TestInterceptHookPanics(t *testing.T) {
	cfg, _ := testConfig(t)
	var intercepts atomic.Int64
	cfg.Intercept = func(task string) {
		if task == "target" && intercepts.Add(1) == 1 {
			panic("injected by intercept")
		}
	}
	s := New(cfg)
	defer mustStop(t, s)

	var runs atomic.Int64
	s.Go("target", TaskOptions{}, func(stop <-chan struct{}, task *Task) {
		runs.Add(1)
		task.Beat()
		<-stop
	})
	// The first attempt dies in the intercept before run executes; the
	// restart goes through.
	waitFor(t, "restart after intercept panic", func() bool { return runs.Load() >= 1 })
	if got := s.Panics(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
}

func TestStopBoundedByContext(t *testing.T) {
	cfg, _ := testConfig(t)
	s := New(cfg)

	entered := make(chan struct{})
	release := make(chan struct{})
	s.Go("wedge-forever", TaskOptions{}, func(stop <-chan struct{}, task *Task) {
		close(entered)
		<-release // ignores stop: simulates a truly stuck goroutine
	})
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Stop(ctx)
	if err == nil {
		t.Fatal("Stop returned nil despite a stuck task")
	}
	if !strings.Contains(err.Error(), "wedge-forever") {
		t.Errorf("Stop error %q does not name the stuck task", err)
	}
	close(release)
}

func TestNormalReturnStops(t *testing.T) {
	cfg, _ := testConfig(t)
	s := New(cfg)
	defer mustStop(t, s)

	s.Go("one-shot", TaskOptions{}, func(stop <-chan struct{}, task *Task) {
		task.Beat()
	})
	waitFor(t, "stopped status", func() bool {
		st := s.Snapshot()
		return len(st) == 1 && st[0].Status == "stopped"
	})
	if got := s.Panics(); got != 0 {
		t.Errorf("panics = %d, want 0", got)
	}
}

func mustStop(t *testing.T, s *Supervisor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Errorf("stop: %v", err)
	}
}
