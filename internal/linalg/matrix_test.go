package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func TestFromRowsAndAt(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("FromRows with ragged rows: want error")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatalf("FromRows(nil): %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("shape = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(3)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMatrixSetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	if err := m.SetRow(0, Vector{1, 2, 3}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if err := m.SetCol(2, Vector{9, 8}); err != nil {
		t.Fatalf("SetCol: %v", err)
	}
	if !m.Row(0).Equal(Vector{1, 2, 9}, 0) {
		t.Errorf("Row(0) = %v", m.Row(0))
	}
	if !m.Col(2).Equal(Vector{9, 8}, 0) {
		t.Errorf("Col(2) = %v", m.Col(2))
	}
	if err := m.SetRow(0, Vector{1}); err == nil {
		t.Error("SetRow wrong length: want error")
	}
	if err := m.SetCol(0, Vector{1}); err == nil {
		t.Error("SetCol wrong length: want error")
	}
}

func TestMatrixIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Row(5) },
		func() { m.Col(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("T[2,1] = %v, want 6", tr.At(2, 1))
	}
	if !m.T().T().Equal(m, 0) {
		t.Error("double transpose is not identity")
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{10, 20}, {30, 40}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.At(1, 1) != 44 {
		t.Errorf("Add[1,1] = %v, want 44", sum.At(1, 1))
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff.At(0, 0) != 9 {
		t.Errorf("Sub[0,0] = %v, want 9", diff.At(0, 0))
	}
	if got := a.Scale(3).At(1, 0); got != 9 {
		t.Errorf("Scale[1,0] = %v, want 9", got)
	}
	if _, err := a.Add(NewMatrix(1, 2)); err == nil {
		t.Error("Add with shape mismatch: want error")
	}
	if _, err := a.Sub(NewMatrix(1, 2)); err == nil {
		t.Error("Sub with shape mismatch: want error")
	}
}

func TestMatrixMul(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("Mul with inner-dim mismatch: want error")
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.Mul(Identity(3))
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !got.Equal(a, 0) {
		t.Error("A*I != A")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if !got.Equal(Vector{3, 7}, 1e-12) {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
	if _, err := a.MulVec(Vector{1}); err == nil {
		t.Error("MulVec with mismatch: want error")
	}
}

func TestMatrixIsSymmetric(t *testing.T) {
	sym := mustFromRows(t, [][]float64{{2, 1}, {1, 2}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported as asymmetric")
	}
	asym := mustFromRows(t, [][]float64{{2, 1}, {0, 2}})
	if asym.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported as symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Error("non-square matrix reported as symmetric")
	}
}

func TestMatrixTrace(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	tr, err := m.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if tr != 5 {
		t.Errorf("Trace = %v, want 5", tr)
	}
	if _, err := NewMatrix(2, 3).Trace(); err == nil {
		t.Error("Trace of non-square: want error")
	}
}

func TestMatrixClone(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestMatrixString(t *testing.T) {
	s := mustFromRows(t, [][]float64{{1, 2}}).String()
	if s == "" {
		t.Error("String returned empty")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated variables.
	data := mustFromRows(t, [][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := Covariance(data)
	if math.Abs(cov.At(0, 0)-1) > 1e-12 {
		t.Errorf("var(x) = %v, want 1", cov.At(0, 0))
	}
	if math.Abs(cov.At(1, 1)-4) > 1e-12 {
		t.Errorf("var(y) = %v, want 4", cov.At(1, 1))
	}
	if math.Abs(cov.At(0, 1)-2) > 1e-12 {
		t.Errorf("cov(x,y) = %v, want 2", cov.At(0, 1))
	}
}

func TestCovarianceFewRows(t *testing.T) {
	one := mustFromRows(t, [][]float64{{1, 2}})
	cov := Covariance(one)
	if cov.FrobeniusNorm() != 0 {
		t.Error("covariance with one row should be zero")
	}
}

// Property: covariance matrices are symmetric positive semi-definite
// (checked via xᵀCx >= 0 for random x).
func TestCovariancePSDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := 3 + rng.Intn(20)
		cols := 1 + rng.Intn(6)
		data := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				data.Set(i, j, rng.NormFloat64()*10)
			}
		}
		cov := Covariance(data)
		if !cov.IsSymmetric(1e-9) {
			t.Fatalf("trial %d: covariance not symmetric", trial)
		}
		x := make(Vector, cols)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		cx, err := cov.MulVec(x)
		if err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		q, err := x.Dot(cx)
		if err != nil {
			t.Fatalf("Dot: %v", err)
		}
		if q < -1e-7*(1+cov.FrobeniusNorm()) {
			t.Fatalf("trial %d: covariance not PSD, xᵀCx = %v", trial, q)
		}
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(a, b [2][2]float64) bool {
		am := NewMatrix(2, 2)
		bm := NewMatrix(2, 2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				am.Set(i, j, sanitize(a[i][j]))
				bm.Set(i, j, sanitize(b[i][j]))
			}
		}
		ab, err := am.Mul(bm)
		if err != nil {
			return false
		}
		btat, err := bm.T().Mul(am.T())
		if err != nil {
			return false
		}
		return ab.T().Equal(btat, 1e-6*(1+ab.FrobeniusNorm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e3)
}
