package linalg

import "fmt"

// This file holds the fused affine kernels behind the classifier's
// zero-allocation snapshot path: y = m·x + b evaluated into
// caller-owned destinations, with an optional gather of x out of a
// larger source vector so the sub-vector is never materialized.

// RowView returns row i as a slice aliasing the matrix's backing
// array: no copy is made, and mutating the returned vector mutates the
// matrix. It exists for allocation-free row iteration in hot loops;
// use Row for an independent copy.
func (m *Matrix) RowView(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// AffineInto computes dst = m·x + b without allocating. dst and b must
// have length m.Rows(); dst may not alias x.
func (m *Matrix) AffineInto(dst, x, b Vector) error {
	if len(x) != m.cols {
		return fmt.Errorf("%w: AffineInto %dx%d by %d", ErrDimension, m.rows, m.cols, len(x))
	}
	if len(dst) != m.rows || len(b) != m.rows {
		return fmt.Errorf("%w: AffineInto dst %d, b %d, want %d", ErrDimension, len(dst), len(b), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := b[i]
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
	return nil
}

// AffineGatherInto computes dst = m·g + b where g[j] = src[idx[j]]:
// the gathered sub-vector is read directly out of src, never
// materialized. idx must have length m.Cols() and index into src; dst
// and b must have length m.Rows(). Nothing is allocated.
func (m *Matrix) AffineGatherInto(dst Vector, src []float64, idx []int, b Vector) error {
	if len(idx) != m.cols {
		return fmt.Errorf("%w: AffineGatherInto %dx%d with %d gather indices", ErrDimension, m.rows, m.cols, len(idx))
	}
	if len(dst) != m.rows || len(b) != m.rows {
		return fmt.Errorf("%w: AffineGatherInto dst %d, b %d, want %d", ErrDimension, len(dst), len(b), m.rows)
	}
	for _, ix := range idx {
		if ix < 0 || ix >= len(src) {
			return fmt.Errorf("%w: AffineGatherInto index %d out of range for source of %d", ErrDimension, ix, len(src))
		}
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := b[i]
		for j, w := range row {
			s += w * src[idx[j]]
		}
		dst[i] = s
	}
	return nil
}

// AffineRowsInto computes dst[i,:] = m·src[i,:] + b for every row of
// src: the batch form of AffineInto. dst must be src.Rows()×m.Rows()
// and b must have length m.Rows(). Nothing is allocated.
func (m *Matrix) AffineRowsInto(dst, src *Matrix, b Vector) error {
	if src.cols != m.cols {
		return fmt.Errorf("%w: AffineRowsInto %dx%d by rows of %d", ErrDimension, m.rows, m.cols, src.cols)
	}
	if dst.rows != src.rows || dst.cols != m.rows || len(b) != m.rows {
		return fmt.Errorf("%w: AffineRowsInto dst %dx%d, b %d, want %dx%d, %d",
			ErrDimension, dst.rows, dst.cols, len(b), src.rows, m.rows, m.rows)
	}
	for i := 0; i < src.rows; i++ {
		x := src.data[i*src.cols : (i+1)*src.cols]
		out := dst.data[i*dst.cols : (i+1)*dst.cols]
		for r := 0; r < m.rows; r++ {
			row := m.data[r*m.cols : (r+1)*m.cols]
			s := b[r]
			for j, w := range row {
				s += w * x[j]
			}
			out[r] = s
		}
	}
	return nil
}
