package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix. It panics if either
// dimension is negative; a zero dimension yields an empty matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d,%d) with negative dimension", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal
// length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: FromRows row %d has %d cols, want %d", ErrDimension, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v Vector) error {
	if len(v) != m.cols {
		return fmt.Errorf("%w: SetRow len %d, want %d", ErrDimension, len(v), m.cols)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
	return nil
}

// SetCol copies v into column j.
func (m *Matrix) SetCol(j int, v Vector) error {
	if len(v) != m.rows {
		return fmt.Errorf("%w: SetCol len %d, want %d", ErrDimension, len(v), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
	return nil
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("%w: Add %dx%d vs %dx%d", ErrDimension, m.rows, m.cols, n.rows, n.cols)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + n.data[i]
	}
	return out, nil
}

// Sub returns m - n.
func (m *Matrix) Sub(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("%w: Sub %dx%d vs %dx%d", ErrDimension, m.rows, m.cols, n.rows, n.cols)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - n.data[i]
	}
	return out, nil
}

// Scale returns a*m.
func (m *Matrix) Scale(a float64) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = a * m.data[i]
	}
	return out
}

// Mul returns the matrix product m*n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("%w: Mul %dx%d by %dx%d", ErrDimension, m.rows, m.cols, n.rows, n.cols)
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			nk := n.data[k*n.cols : (k+1)*n.cols]
			for j, nkj := range nk {
				oi[j] += mik * nkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: MulVec %dx%d by %d", ErrDimension, m.rows, m.cols, len(v))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports whether m and n have the same shape and elements within
// tol of each other.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	return Vector(m.data).Norm()
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() (float64, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("%w: Trace of %dx%d matrix", ErrDimension, m.rows, m.cols)
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.At(i, i)
	}
	return t, nil
}

// String renders the matrix for debugging output.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% 10.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Covariance returns the sample covariance matrix of a data matrix whose
// rows are observations and whose columns are variables. With r
// observations the normalization is 1/(r-1); a matrix with fewer than two
// rows yields a zero covariance matrix.
func Covariance(data *Matrix) *Matrix {
	r, c := data.Rows(), data.Cols()
	cov := NewMatrix(c, c)
	if r < 2 {
		return cov
	}
	means := make([]float64, c)
	for j := 0; j < c; j++ {
		var s float64
		for i := 0; i < r; i++ {
			s += data.At(i, j)
		}
		means[j] = s / float64(r)
	}
	for a := 0; a < c; a++ {
		for b := a; b < c; b++ {
			var s float64
			for i := 0; i < r; i++ {
				s += (data.At(i, a) - means[a]) * (data.At(i, b) - means[b])
			}
			v := s / float64(r-1)
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}
