package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchSymmetric(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// BenchmarkSymmetricEigen measures the Jacobi eigensolver at the sizes
// the classifier uses (8x8 covariance) and beyond.
func BenchmarkSymmetricEigen(b *testing.B) {
	for _, n := range []int{8, 16, 33} {
		n := n
		b.Run(fmt.Sprintf("n-%d", n), func(b *testing.B) {
			m := benchSymmetric(n, int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SymmetricEigen(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSVD measures the one-sided Jacobi SVD on snapshot-matrix
// shapes (many rows, few columns).
func BenchmarkSVD(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		rows := rows
		b.Run(fmt.Sprintf("rows-%d-cols-8", rows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(rows)))
			m := NewMatrix(rows, 8)
			for i := 0; i < rows; i++ {
				for j := 0; j < 8; j++ {
					m.Set(i, j, rng.NormFloat64())
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SVD(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCovariance measures the covariance of a full profiling run
// (thousands of snapshots by 8 expert metrics).
func BenchmarkCovariance(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := NewMatrix(4000, 8)
	for i := 0; i < 4000; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Covariance(m)
	}
}
