package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U * diag(S) * Vᵀ
// where A is r×c, U is r×c (columns orthonormal when S[i] > 0), S has
// length c (descending), and V is c×c with orthonormal columns.
type SVDResult struct {
	U *Matrix
	S Vector
	V *Matrix
}

// onesidedMaxSweeps bounds the Hestenes one-sided Jacobi iteration.
const onesidedMaxSweeps = 96

// SVD computes a thin singular value decomposition of a using the
// Hestenes one-sided Jacobi method (orthogonalizing the columns of a
// working copy by plane rotations). It requires r >= c, which always
// holds for the classifier's snapshot matrices (thousands of samples by
// at most a few dozen metrics).
func SVD(a *Matrix) (*SVDResult, error) {
	r, c := a.Rows(), a.Cols()
	if r < c {
		return nil, fmt.Errorf("%w: SVD requires rows >= cols, got %dx%d", ErrDimension, r, c)
	}
	if c == 0 {
		return &SVDResult{U: NewMatrix(r, 0), S: Vector{}, V: NewMatrix(0, 0)}, nil
	}
	u := a.Clone()
	v := Identity(c)

	eps := 1e-14
	for sweep := 0; sweep < onesidedMaxSweeps; sweep++ {
		converged := true
		for p := 0; p < c-1; p++ {
			for q := p + 1; q < c; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < r; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				converged = false
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				cs := 1 / math.Sqrt(1+t*t)
				sn := t * cs
				for i := 0; i < r; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, cs*up-sn*uq)
					u.Set(i, q, sn*up+cs*uq)
				}
				for i := 0; i < c; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, cs*vp-sn*vq)
					v.Set(i, q, sn*vp+cs*vq)
				}
			}
		}
		if converged {
			break
		}
	}

	// Column norms of the rotated matrix are the singular values.
	s := make(Vector, c)
	for j := 0; j < c; j++ {
		s[j] = u.Col(j).Norm()
	}
	idx := make([]int, c)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return s[idx[x]] > s[idx[y]] })

	sortedS := make(Vector, c)
	sortedU := NewMatrix(r, c)
	sortedV := NewMatrix(c, c)
	for newCol, oldCol := range idx {
		sortedS[newCol] = s[oldCol]
		for i := 0; i < r; i++ {
			val := u.At(i, oldCol)
			if s[oldCol] > 0 {
				val /= s[oldCol]
			}
			sortedU.Set(i, newCol, val)
		}
		for i := 0; i < c; i++ {
			sortedV.Set(i, newCol, v.At(i, oldCol))
		}
	}
	// Keep U and V sign-consistent: flip both together so that
	// U*diag(S)*Vᵀ is preserved while V's columns follow the same
	// largest-entry-positive convention as the eigensolver.
	for j := 0; j < c; j++ {
		bestAbs, bestVal := 0.0, 0.0
		for i := 0; i < c; i++ {
			if a := math.Abs(sortedV.At(i, j)); a > bestAbs {
				bestAbs, bestVal = a, sortedV.At(i, j)
			}
		}
		if bestVal < 0 {
			for i := 0; i < c; i++ {
				sortedV.Set(i, j, -sortedV.At(i, j))
			}
			for i := 0; i < r; i++ {
				sortedU.Set(i, j, -sortedU.At(i, j))
			}
		}
	}
	return &SVDResult{U: sortedU, S: sortedS, V: sortedV}, nil
}
