package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenResult holds the eigendecomposition of a symmetric matrix:
// Values[i] is the i-th eigenvalue (descending) and Vectors.Col(i) is the
// corresponding unit eigenvector.
type EigenResult struct {
	Values  Vector
	Vectors *Matrix
}

// jacobiMaxSweeps bounds the number of full Jacobi sweeps. The cyclic
// Jacobi method converges quadratically; well-conditioned covariance
// matrices of the sizes used here converge in well under ten sweeps.
const jacobiMaxSweeps = 64

// SymmetricEigen computes all eigenvalues and eigenvectors of a symmetric
// matrix using the cyclic Jacobi rotation method. The input is not
// modified. Eigenpairs are returned in descending eigenvalue order.
func SymmetricEigen(m *Matrix) (*EigenResult, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: SymmetricEigen of %dx%d matrix", ErrDimension, m.Rows(), m.Cols())
	}
	n := m.Rows()
	if !m.IsSymmetric(1e-9 * (1 + m.FrobeniusNorm())) {
		return nil, fmt.Errorf("linalg: SymmetricEigen: matrix is not symmetric")
	}
	a := m.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := a.At(i, j)
				s += x * x
			}
		}
		return math.Sqrt(s)
	}

	tol := 1e-12 * (1 + a.FrobeniusNorm())
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				// Stable computation of the rotation angle
				// (Golub & Van Loan, symmetric Schur decomposition).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make(Vector, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })

	sortedVals := make(Vector, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	canonicalizeColumns(sortedVecs)
	return &EigenResult{Values: sortedVals, Vectors: sortedVecs}, nil
}

// canonicalizeColumns flips the sign of each column so that its
// largest-magnitude entry is positive. Eigenvectors are only defined up
// to sign; fixing a convention makes results reproducible and lets the
// SVD cross-check compare vectors directly.
func canonicalizeColumns(m *Matrix) {
	for j := 0; j < m.Cols(); j++ {
		bestAbs, bestVal := 0.0, 0.0
		for i := 0; i < m.Rows(); i++ {
			if a := math.Abs(m.At(i, j)); a > bestAbs {
				bestAbs, bestVal = a, m.At(i, j)
			}
		}
		if bestVal < 0 {
			for i := 0; i < m.Rows(); i++ {
				m.Set(i, j, -m.At(i, j))
			}
		}
	}
}
