package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAdd(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	got, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	want := Vector{5, 7, 9}
	if !got.Equal(want, 0) {
		t.Errorf("Add = %v, want %v", got, want)
	}
}

func TestVectorAddDimensionMismatch(t *testing.T) {
	_, err := Vector{1}.Add(Vector{1, 2})
	if err == nil {
		t.Fatal("Add with mismatched lengths: want error, got nil")
	}
}

func TestVectorSub(t *testing.T) {
	got, err := Vector{4, 5, 6}.Sub(Vector{1, 2, 3})
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !got.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v, want [3 3 3]", got)
	}
}

func TestVectorSubDimensionMismatch(t *testing.T) {
	if _, err := (Vector{1, 2}).Sub(Vector{1}); err == nil {
		t.Fatal("Sub with mismatched lengths: want error, got nil")
	}
}

func TestVectorScale(t *testing.T) {
	got := Vector{1, -2, 3}.Scale(2)
	if !got.Equal(Vector{2, -4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVectorDot(t *testing.T) {
	got, err := Vector{1, 2, 3}.Dot(Vector{4, 5, 6})
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorDotDimensionMismatch(t *testing.T) {
	if _, err := (Vector{1}).Dot(Vector{1, 2}); err == nil {
		t.Fatal("Dot with mismatched lengths: want error, got nil")
	}
}

func TestVectorNorm(t *testing.T) {
	if got := (Vector{3, 4}).Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (Vector{}).Norm(); got != 0 {
		t.Errorf("Norm of empty = %v, want 0", got)
	}
	if got := (Vector{0, 0}).Norm(); got != 0 {
		t.Errorf("Norm of zero = %v, want 0", got)
	}
}

func TestVectorNormOverflowResistance(t *testing.T) {
	big := math.MaxFloat64 / 4
	v := Vector{big, big}
	got := v.Norm()
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("Norm of large vector overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm = %v, want %v", got, want)
	}
}

func TestVectorDist(t *testing.T) {
	d, err := Vector{1, 1}.Dist(Vector{4, 5})
	if err != nil {
		t.Fatalf("Dist: %v", err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{3, 4}.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("Normalize norm = %v, want 1", v.Norm())
	}
	z := Vector{0, 0}.Normalize()
	if !z.Equal(Vector{0, 0}, 0) {
		t.Errorf("Normalize zero = %v, want zero", z)
	}
}

func TestVectorSumMean(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	if v.Sum() != 10 {
		t.Errorf("Sum = %v, want 10", v.Sum())
	}
	if v.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", v.Mean())
	}
	if (Vector{}).Mean() != 0 {
		t.Error("Mean of empty should be 0")
	}
}

func TestVectorMax(t *testing.T) {
	val, at := Vector{1, 9, 3}.Max()
	if val != 9 || at != 1 {
		t.Errorf("Max = (%v,%d), want (9,1)", val, at)
	}
	defer func() {
		if recover() == nil {
			t.Error("Max of empty vector should panic")
		}
	}()
	Vector{}.Max()
}

func TestVectorAbsMax(t *testing.T) {
	if got := (Vector{1, -7, 3}).AbsMax(); got != 7 {
		t.Errorf("AbsMax = %v, want 7", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

// Property: the triangle inequality holds for the Euclidean distance.
func TestVectorTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va, vb, vc := clampVec(a[:]), clampVec(b[:]), clampVec(c[:])
		ab, _ := va.Dist(vb)
		bc, _ := vb.Dist(vc)
		ac, _ := va.Dist(vc)
		return ac <= ab+bc+1e-9*(1+ab+bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |v·w| <= |v||w|.
func TestVectorCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [5]float64) bool {
		va, vb := clampVec(a[:]), clampVec(b[:])
		dot, _ := va.Dot(vb)
		lhs := math.Abs(dot)
		rhs := va.Norm() * vb.Norm()
		return lhs <= rhs*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampVec maps arbitrary quick-generated floats into a numerically sane
// range and replaces NaN/Inf so that properties test algebra rather than
// float pathologies.
func clampVec(xs []float64) Vector {
	out := make(Vector, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1e6)
	}
	return out
}
