package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymmetricEigenDiagonal(t *testing.T) {
	m := mustFromRows(t, [][]float64{{3, 0}, {0, 1}})
	res, err := SymmetricEigen(m)
	if err != nil {
		t.Fatalf("SymmetricEigen: %v", err)
	}
	if !res.Values.Equal(Vector{3, 1}, 1e-10) {
		t.Errorf("values = %v, want [3 1]", res.Values)
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	m := mustFromRows(t, [][]float64{{2, 1}, {1, 2}})
	res, err := SymmetricEigen(m)
	if err != nil {
		t.Fatalf("SymmetricEigen: %v", err)
	}
	if math.Abs(res.Values[0]-3) > 1e-10 || math.Abs(res.Values[1]-1) > 1e-10 {
		t.Errorf("values = %v, want [3 1]", res.Values)
	}
	v0 := res.Vectors.Col(0)
	inv := 1 / math.Sqrt2
	if !v0.Equal(Vector{inv, inv}, 1e-9) {
		t.Errorf("first eigenvector = %v, want [%v %v]", v0, inv, inv)
	}
}

func TestSymmetricEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymmetricEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("want error for non-square input")
	}
}

func TestSymmetricEigenRejectsAsymmetric(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {0, 1}})
	if _, err := SymmetricEigen(m); err == nil {
		t.Fatal("want error for asymmetric input")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() * 5
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// Property: A*v = λ*v for every returned eigenpair, eigenvectors are
// orthonormal, and the trace equals the eigenvalue sum.
func TestSymmetricEigenResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		m := randomSymmetric(rng, n)
		res, err := SymmetricEigen(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		scale := 1 + m.FrobeniusNorm()
		for k := 0; k < n; k++ {
			v := res.Vectors.Col(k)
			av, err := m.MulVec(v)
			if err != nil {
				t.Fatal(err)
			}
			lv := v.Scale(res.Values[k])
			diff, _ := av.Sub(lv)
			if diff.Norm() > 1e-8*scale {
				t.Fatalf("trial %d: residual |Av-λv| = %v for pair %d", trial, diff.Norm(), k)
			}
			if math.Abs(v.Norm()-1) > 1e-9 {
				t.Fatalf("trial %d: eigenvector %d not unit norm: %v", trial, k, v.Norm())
			}
		}
		// Orthogonality.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				d, _ := res.Vectors.Col(a).Dot(res.Vectors.Col(b))
				if math.Abs(d) > 1e-8 {
					t.Fatalf("trial %d: eigenvectors %d,%d not orthogonal: %v", trial, a, b, d)
				}
			}
		}
		tr, _ := m.Trace()
		if math.Abs(tr-res.Values.Sum()) > 1e-8*scale {
			t.Fatalf("trial %d: trace %v != eigenvalue sum %v", trial, tr, res.Values.Sum())
		}
		// Descending order.
		for k := 1; k < n; k++ {
			if res.Values[k] > res.Values[k-1]+1e-10*scale {
				t.Fatalf("trial %d: eigenvalues not descending: %v", trial, res.Values)
			}
		}
	}
}

// Property: eigendecomposition reconstructs the original matrix,
// A = V diag(λ) Vᵀ.
func TestSymmetricEigenReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		m := randomSymmetric(rng, n)
		res, err := SymmetricEigen(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, res.Values[i])
		}
		vd, err := res.Vectors.Mul(d)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := vd.Mul(res.Vectors.T())
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Equal(m, 1e-7*(1+m.FrobeniusNorm())) {
			t.Fatalf("trial %d: reconstruction mismatch", trial)
		}
	}
}

func TestSymmetricEigenSignConvention(t *testing.T) {
	m := mustFromRows(t, [][]float64{{2, 1}, {1, 2}})
	res, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		v := res.Vectors.Col(k)
		_, at := absMaxIdx(v)
		if v[at] < 0 {
			t.Errorf("column %d: largest-magnitude entry is negative: %v", k, v)
		}
	}
}

func absMaxIdx(v Vector) (float64, int) {
	best, at := math.Abs(v[0]), 0
	for i, x := range v[1:] {
		if a := math.Abs(x); a > best {
			best, at = a, i+1
		}
	}
	return best, at
}
