package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSVDKnownDiagonal(t *testing.T) {
	a := mustFromRows(t, [][]float64{{3, 0}, {0, 2}, {0, 0}})
	res, err := SVD(a)
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	if !res.S.Equal(Vector{3, 2}, 1e-10) {
		t.Errorf("singular values = %v, want [3 2]", res.S)
	}
}

func TestSVDRejectsWide(t *testing.T) {
	if _, err := SVD(NewMatrix(2, 3)); err == nil {
		t.Fatal("want error for rows < cols")
	}
}

func TestSVDEmptyCols(t *testing.T) {
	res, err := SVD(NewMatrix(3, 0))
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	if len(res.S) != 0 {
		t.Errorf("S = %v, want empty", res.S)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value must be ~0.
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 4}, {3, 6}})
	res, err := SVD(a)
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	if res.S[1] > 1e-9 {
		t.Errorf("rank-1 matrix: second singular value = %v, want ~0", res.S[1])
	}
}

// Property: A = U diag(S) Vᵀ, U and V have orthonormal columns, and S is
// nonnegative descending.
func TestSVDReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		r := 3 + rng.Intn(12)
		c := 1 + rng.Intn(r) // ensure r >= c
		a := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64()*3)
			}
		}
		res, err := SVD(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := 0; k < c; k++ {
			if res.S[k] < 0 {
				t.Fatalf("trial %d: negative singular value %v", trial, res.S[k])
			}
			if k > 0 && res.S[k] > res.S[k-1]+1e-10 {
				t.Fatalf("trial %d: singular values not descending: %v", trial, res.S)
			}
		}
		d := NewMatrix(c, c)
		for i := 0; i < c; i++ {
			d.Set(i, i, res.S[i])
		}
		ud, err := res.U.Mul(d)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := ud.Mul(res.V.T())
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Equal(a, 1e-7*(1+a.FrobeniusNorm())) {
			t.Fatalf("trial %d: U S Vᵀ does not reconstruct A", trial)
		}
		// V orthonormal.
		vtv, err := res.V.T().Mul(res.V)
		if err != nil {
			t.Fatal(err)
		}
		if !vtv.Equal(Identity(c), 1e-8) {
			t.Fatalf("trial %d: VᵀV != I", trial)
		}
	}
}

// Property: the singular values of A are the square roots of the
// eigenvalues of AᵀA. This is the identity that makes SVD a valid
// cross-check for covariance-based PCA.
func TestSVDEigenConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		r := 4 + rng.Intn(10)
		c := 2 + rng.Intn(4)
		if c > r {
			c = r
		}
		a := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		svd, err := SVD(a)
		if err != nil {
			t.Fatalf("SVD: %v", err)
		}
		ata, err := a.T().Mul(a)
		if err != nil {
			t.Fatal(err)
		}
		eig, err := SymmetricEigen(ata)
		if err != nil {
			t.Fatalf("SymmetricEigen: %v", err)
		}
		for k := 0; k < c; k++ {
			lam := eig.Values[k]
			if lam < 0 {
				lam = 0
			}
			want := math.Sqrt(lam)
			if math.Abs(svd.S[k]-want) > 1e-7*(1+want) {
				t.Fatalf("trial %d: S[%d] = %v, sqrt(eig) = %v", trial, k, svd.S[k], want)
			}
		}
	}
}
