package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestRowView(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	v := m.RowView(1)
	if len(v) != 3 || v[0] != 4 || v[2] != 6 {
		t.Fatalf("RowView(1) = %v", v)
	}
	v[0] = 40
	if m.At(1, 0) != 40 {
		t.Error("RowView does not alias the matrix storage")
	}
}

func TestAffineIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		q, p := 1+rng.Intn(5), 1+rng.Intn(12)
		w := randomMatrix(rng, q, p)
		x := make(Vector, p)
		b := make(Vector, q)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := w.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		dst := make(Vector, q)
		if err := w.AffineInto(dst, x, b); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			if math.Abs(dst[i]-(want[i]+b[i])) > 1e-12 {
				t.Fatalf("trial %d: AffineInto[%d] = %v, want %v", trial, i, dst[i], want[i]+b[i])
			}
		}
	}
}

func TestAffineGatherIntoMatchesExplicitGather(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		q, p, n := 1+rng.Intn(4), 1+rng.Intn(8), 9+rng.Intn(30)
		w := randomMatrix(rng, q, p)
		b := make(Vector, q)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		idx := make([]int, p)
		gathered := make(Vector, p)
		for i := range idx {
			idx[i] = rng.Intn(n)
			gathered[i] = src[idx[i]]
		}
		want := make(Vector, q)
		if err := w.AffineInto(want, gathered, b); err != nil {
			t.Fatal(err)
		}
		got := make(Vector, q)
		if err := w.AffineGatherInto(got, src, idx, b); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: gather[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestAffineGatherIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := randomMatrix(rng, 2, 8)
	b := make(Vector, 2)
	src := make([]float64, 33)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	idx := []int{4, 2, 20, 21, 29, 30, 31, 32}
	dst := make(Vector, 2)
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.AffineGatherInto(dst, src, idx, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AffineGatherInto allocates %v per run, want 0", allocs)
	}
}

func TestAffineRowsIntoMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := randomMatrix(rng, 3, 8)
	b := make(Vector, 3)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	src := randomMatrix(rng, 40, 8)
	dst := NewMatrix(40, 3)
	if err := w.AffineRowsInto(dst, src, b); err != nil {
		t.Fatal(err)
	}
	row := make(Vector, 3)
	for i := 0; i < src.Rows(); i++ {
		if err := w.AffineInto(row, src.Row(i), b); err != nil {
			t.Fatal(err)
		}
		for j := range row {
			if dst.At(i, j) != row[j] {
				t.Fatalf("row %d col %d: batch %v, single %v", i, j, dst.At(i, j), row[j])
			}
		}
	}
}

func TestAffineDimensionErrors(t *testing.T) {
	w := NewMatrix(2, 3)
	if err := w.AffineInto(make(Vector, 2), make(Vector, 4), make(Vector, 2)); err == nil {
		t.Error("AffineInto accepted a mis-sized input")
	}
	if err := w.AffineInto(make(Vector, 1), make(Vector, 3), make(Vector, 2)); err == nil {
		t.Error("AffineInto accepted a mis-sized destination")
	}
	if err := w.AffineGatherInto(make(Vector, 2), make([]float64, 5), []int{0, 1}, make(Vector, 2)); err == nil {
		t.Error("AffineGatherInto accepted a short gather index")
	}
	if err := w.AffineGatherInto(make(Vector, 2), make([]float64, 5), []int{0, 1, 9}, make(Vector, 2)); err == nil {
		t.Error("AffineGatherInto accepted an out-of-range gather index")
	}
	if err := w.AffineRowsInto(NewMatrix(4, 2), NewMatrix(5, 3), make(Vector, 2)); err == nil {
		t.Error("AffineRowsInto accepted a row-count mismatch")
	}
}
