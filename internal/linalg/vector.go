// Package linalg provides the dense linear algebra needed by the
// application classifier: vectors, matrices, a Jacobi eigensolver for
// symmetric matrices, and a one-sided Jacobi SVD used to cross-check the
// PCA implementation. Everything is stdlib-only and sized for the small
// (tens of dimensions, thousands of samples) problems the paper works
// with; clarity and numerical robustness are preferred over blocking or
// cache tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned (wrapped) whenever operand shapes do not
// conform.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: Add %d vs %d", ErrDimension, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: Sub %d vs %d", ErrDimension, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns a*v.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: Dot %d vs %d", ErrDimension, len(v), len(w))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm returns the Euclidean (L2) norm of v, computed with scaling to
// avoid overflow for large components.
func (v Vector) Norm() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) (float64, error) {
	d, err := v.Sub(w)
	if err != nil {
		return 0, err
	}
	return d.Norm(), nil
}

// Normalize returns v scaled to unit norm. A zero vector is returned
// unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(1 / n)
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v. The mean of an empty vector is 0.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index. It panics on an empty
// vector, which is always a programming error here.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, at = x, i+1
		}
	}
	return best, at
}

// AbsMax returns the maximum absolute element value.
func (v Vector) AbsMax() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether v and w have the same length and elements within
// tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}
