package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Scrubbing proactively re-verifies sealed segments frame-by-frame, so
// latent corruption (bit rot, a bad sector, a partial page write that
// slipped past the rotation fsync) is found on the scrubber's schedule
// instead of at the next recovery, when the damaged record is the one
// replay needs. A damaged segment is repaired by copy-forward: the
// surviving frames are rewritten into a fresh file under the original
// name, and the damaged original is kept hard-linked as
// <segment>.corrupt for forensics — the same quarantine idiom the
// application store uses.
//
// Repair rewrites byte offsets after the first dropped frame, so it is
// only safe once no checkpoint still points into the damaged region;
// the live journal enforces that through ScrubConfig.PreRepair (the
// server checkpoints first), the offline ScrubDir by consulting the
// newest checkpoint on disk.

// ScrubReport describes one scanned segment.
type ScrubReport struct {
	// Seq is the segment sequence number.
	Seq uint64 `json:"seq"`
	// Path is the segment file path.
	Path string `json:"path"`
	// Records is the number of intact records in the segment.
	Records int `json:"records"`
	// BadFrames counts CRC-mismatched or undecodable frames whose
	// extent is still walkable — each one is a lost record the repair
	// drops.
	BadFrames int `json:"bad_frames,omitempty"`
	// FirstBadOff is the offset of the first bad frame (meaningful only
	// when BadFrames > 0).
	FirstBadOff int64 `json:"first_bad_off,omitempty"`
	// TornTail reports bytes at the end that do not form a walkable
	// frame (torn write, or a corrupted length field that makes the
	// remainder unwalkable). A torn tail is not repaired — replay
	// already stops cleanly at it, and TruncateAtCorruption exists for
	// operators who want it gone.
	TornTail bool `json:"torn_tail,omitempty"`
	// TornReason says what ended the walk when TornTail.
	TornReason string `json:"torn_reason,omitempty"`
	// Repaired reports that the segment was rewritten without its bad
	// frames.
	Repaired bool `json:"repaired,omitempty"`
	// SkipReason says why a damaged segment was not repaired.
	SkipReason string `json:"skip_reason,omitempty"`
	// Quarantined is the path of the preserved damaged original ("" if
	// no repair happened).
	Quarantined string `json:"quarantined,omitempty"`
	// OldSize and NewSize are the file sizes before and after repair
	// (equal when no repair happened).
	OldSize int64 `json:"old_size"`
	NewSize int64 `json:"new_size"`
}

// Damaged reports whether the scan found anything wrong at all.
func (r ScrubReport) Damaged() bool { return r.BadFrames > 0 || r.TornTail }

// frameSpan is one intact frame's extent inside a scanned segment.
type frameSpan struct {
	off int64
	n   int64
}

// scrubScan walks every frame of the segment at path, tolerating bad
// frames: a frame whose CRC mismatches (or whose payload does not
// decode) but whose extent still fits the file is recorded as bad and
// stepped over, so one flipped bit does not hide the records behind
// it. A frame whose length field is implausible or runs past EOF ends
// the walk as a torn tail — the length cannot be trusted, so nothing
// after it can be located. Returns the raw file bytes and the spans of
// intact frames for repair use.
func scrubScan(path string, seq uint64) (ScrubReport, []byte, int64, []frameSpan, error) {
	rep := ScrubReport{Seq: seq, Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, nil, 0, nil, fmt.Errorf("wal: read segment %s: %w", path, err)
	}
	rep.OldSize = int64(len(data))
	rep.NewSize = rep.OldSize

	hdrSize, reason := scanHeaderBytes(data)
	if reason != "" {
		rep.TornTail, rep.TornReason = true, reason
		return rep, data, 0, nil, nil
	}

	var spans []frameSpan
	off := hdrSize
	for off < int64(len(data)) {
		if off+frameSize > int64(len(data)) {
			rep.TornTail = true
			rep.TornReason = fmt.Sprintf("torn frame at offset %d", off)
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		end := off + frameSize + length
		if length == 0 || length > maxPayload || end > int64(len(data)) {
			// A flipped length byte and a torn write are
			// indistinguishable here; either way the remainder cannot be
			// walked.
			rep.TornTail = true
			rep.TornReason = fmt.Sprintf("unwalkable record length %d at offset %d", length, off)
			break
		}
		payload := data[off+frameSize : end]
		ok := crc32.Checksum(payload, castagnoli) == crc
		if ok {
			if _, derr := decodePayload(payload); derr != nil {
				ok = false
			}
		}
		if ok {
			spans = append(spans, frameSpan{off: off, n: frameSize + length})
			rep.Records++
		} else {
			if rep.BadFrames == 0 {
				rep.FirstBadOff = off
			}
			rep.BadFrames++
		}
		off = end
	}
	return rep, data, hdrSize, spans, nil
}

// scrubVerify walks the segment sequentially through a small reused
// buffer, verifying every frame's CRC without materializing the file
// or decoding payloads — the live scrubber's fast path, cheap enough
// to run next to hot ingest. CRC-valid frames whose payload would not
// decode are not flagged here (the encoder wrote them, so they cannot
// occur from bit rot); the full materializing scan re-checks them
// whenever damage is found and a repair runs.
func scrubVerify(path string, seq uint64) (ScrubReport, error) {
	rep := ScrubReport{Seq: seq, Path: path}
	f, err := os.Open(path)
	if err != nil {
		return rep, fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return rep, fmt.Errorf("wal: stat segment %s: %w", path, err)
	}
	size := fi.Size()
	rep.OldSize, rep.NewSize = size, size

	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [headerSize]byte
	if size < headerPrefixSize {
		rep.TornTail, rep.TornReason = true, "short segment header"
		return rep, nil
	}
	if _, err := io.ReadFull(br, hdr[:headerPrefixSize]); err != nil {
		return rep, fmt.Errorf("wal: read segment header %s: %w", path, err)
	}
	var off int64
	if [4]byte(hdr[:4]) != segmentMagic {
		rep.TornTail, rep.TornReason = true, "bad segment magic"
		return rep, nil
	}
	switch v := binary.LittleEndian.Uint32(hdr[4:headerPrefixSize]); v {
	case segmentVersionV1:
		off = headerPrefixSize
	case segmentVersion:
		if size < headerSize {
			rep.TornTail, rep.TornReason = true, "short segment header"
			return rep, nil
		}
		if _, err := io.ReadFull(br, hdr[headerPrefixSize:headerSize]); err != nil {
			return rep, fmt.Errorf("wal: read segment header %s: %w", path, err)
		}
		off = headerSize
	default:
		rep.TornTail, rep.TornReason = true, fmt.Sprintf("unsupported segment version %d", v)
		return rep, nil
	}

	var frame [frameSize]byte
	payload := make([]byte, 64<<10)
	for off < size {
		if off+frameSize > size {
			rep.TornTail = true
			rep.TornReason = fmt.Sprintf("torn frame at offset %d", off)
			break
		}
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return rep, fmt.Errorf("wal: read segment %s at offset %d: %w", path, off, err)
		}
		length := int64(binary.LittleEndian.Uint32(frame[:4]))
		crc := binary.LittleEndian.Uint32(frame[4:8])
		end := off + frameSize + length
		if length == 0 || length > maxPayload || end > size {
			rep.TornTail = true
			rep.TornReason = fmt.Sprintf("unwalkable record length %d at offset %d", length, off)
			break
		}
		if int64(len(payload)) < length {
			payload = make([]byte, length)
		}
		if _, err := io.ReadFull(br, payload[:length]); err != nil {
			return rep, fmt.Errorf("wal: read segment %s at offset %d: %w", path, off, err)
		}
		if crc32.Checksum(payload[:length], castagnoli) == crc {
			rep.Records++
		} else {
			if rep.BadFrames == 0 {
				rep.FirstBadOff = off
			}
			rep.BadFrames++
		}
		off = end
	}
	return rep, nil
}

// scanHeaderBytes validates a segment header held in memory and
// returns the header size, or a non-empty reason when it is unusable.
func scanHeaderBytes(data []byte) (int64, string) {
	if len(data) < headerPrefixSize {
		return 0, "short segment header"
	}
	if [4]byte(data[:4]) != segmentMagic {
		return 0, "bad segment magic"
	}
	switch v := binary.LittleEndian.Uint32(data[4:headerPrefixSize]); v {
	case segmentVersionV1:
		return headerPrefixSize, ""
	case segmentVersion:
		if len(data) < headerSize {
			return 0, "short segment header"
		}
		return headerSize, ""
	default:
		return 0, fmt.Sprintf("unsupported segment version %d", v)
	}
}

// repairSegmentFile rewrites the segment at path without its bad
// frames: header plus intact spans go into a temp file, the damaged
// original is preserved as path+".corrupt" via a hard link, then the
// temp file atomically replaces the original. A crash anywhere leaves
// either the damaged original in place (re-detected next scrub) or the
// repaired file published; never a missing segment.
func repairSegmentFile(path string, data []byte, hdrSize int64, spans []frameSpan) (int64, string, error) {
	tmp := path + ".scrub"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, "", fmt.Errorf("wal: create %s: %w", tmp, err)
	}
	fail := func(err error) (int64, string, error) {
		f.Close()
		os.Remove(tmp)
		return 0, "", err
	}
	if _, err := f.Write(data[:hdrSize]); err != nil {
		return fail(fmt.Errorf("wal: write %s: %w", tmp, err))
	}
	size := hdrSize
	for _, sp := range spans {
		if _, err := f.Write(data[sp.off : sp.off+sp.n]); err != nil {
			return fail(fmt.Errorf("wal: write %s: %w", tmp, err))
		}
		size += sp.n
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("wal: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, "", fmt.Errorf("wal: close %s: %w", tmp, err)
	}
	quarantine := path + ".corrupt"
	os.Remove(quarantine) // stale quarantine from an earlier repair
	if err := os.Link(path, quarantine); err != nil {
		os.Remove(tmp)
		return 0, "", fmt.Errorf("wal: quarantine %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, "", fmt.Errorf("wal: publish repaired %s: %w", path, err)
	}
	if err := syncJournalDir(filepath.Dir(path)); err != nil {
		return 0, "", err
	}
	return size, quarantine, nil
}

// syncJournalDir fsyncs a directory so renames within it are durable.
func syncJournalDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}

// ScrubConfig parameterizes one live-journal scrub pass.
type ScrubConfig struct {
	// MaxSegments caps how many sealed segments one call examines; the
	// journal keeps a cursor so successive calls cycle through all of
	// them. Zero means 1 — the low-rate default.
	MaxSegments int
	// PreRepair, when set, runs after damage is found and before the
	// repair rewrites the segment. uncheckpointed reports that the
	// segment holds records not yet covered by a checkpoint — the
	// caller must take one before the repair shifts offsets (the server
	// does exactly that). Returning an error skips the repair; the
	// damage is re-detected on a later pass.
	PreRepair func(seq uint64, uncheckpointed bool) error
}

// ScrubSummary aggregates one Scrub call.
type ScrubSummary struct {
	// Scanned is how many segments were examined.
	Scanned int
	// Damaged holds the report of every segment with damage, repaired
	// or not.
	Damaged []ScrubReport
}

// Scrub examines up to MaxSegments sealed segments for latent
// corruption, repairing damaged ones in place (quarantining the
// original as .corrupt). The scan runs off the journal lock — sealed
// segments are immutable — and only the repair's metadata swap holds
// it, so appends are not stalled. The active segment is never
// scrubbed.
func (j *Journal) Scrub(cfg ScrubConfig) (ScrubSummary, error) {
	max := cfg.MaxSegments
	if max <= 0 {
		max = 1
	}
	var sum ScrubSummary

	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return sum, fmt.Errorf("wal: journal is closed")
	}
	sealed := append([]closedSegment(nil), j.closed...)
	cursor := j.scrubNext
	j.mu.Unlock()
	if len(sealed) == 0 {
		return sum, nil
	}

	// Pick the next run of segments at or after the cursor, wrapping.
	start := 0
	for start < len(sealed) && sealed[start].seq < cursor {
		start++
	}
	if start == len(sealed) {
		start = 0
	}
	picks := sealed[start:]
	if len(picks) > max {
		picks = picks[:max]
	}

	var firstErr error
	for _, seg := range picks {
		quick, err := scrubVerify(segmentPath(j.cfg.Dir, seg.seq), seg.seq)
		j.mu.Lock()
		j.stats.ScrubScans++
		j.mu.Unlock()
		if err != nil {
			// The segment may have been pruned between the snapshot and
			// the read; that is not damage.
			if os.IsNotExist(err) {
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !quick.Damaged() {
			continue
		}
		// Damage confirmed: now pay for the materializing scan, which
		// also re-checks payload decodability and yields the intact
		// spans the repair copies forward.
		rep, data, hdrSize, spans, err := scrubScan(segmentPath(j.cfg.Dir, seg.seq), seg.seq)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !rep.Damaged() {
			continue
		}
		if rep.BadFrames == 0 {
			// Torn tail only: report, never rewrite (see ScrubReport).
			rep.SkipReason = "torn tail is not repaired"
			sum.Damaged = append(sum.Damaged, rep)
			j.cfg.Logf("wal: scrub found torn tail in sealed segment %d: %s", rep.Seq, rep.TornReason)
			continue
		}
		j.cfg.Logf("wal: scrub found %d bad frame(s) in sealed segment %d (first at offset %d)",
			rep.BadFrames, rep.Seq, rep.FirstBadOff)
		j.mu.Lock()
		uncheckpointed := !j.retainSet || seg.seq >= j.retainSeg
		j.mu.Unlock()
		if cfg.PreRepair != nil {
			if err := cfg.PreRepair(seg.seq, uncheckpointed); err != nil {
				rep.SkipReason = fmt.Sprintf("pre-repair hook: %v", err)
				sum.Damaged = append(sum.Damaged, rep)
				j.cfg.Logf("wal: scrub skipping repair of segment %d: %v", seg.seq, err)
				continue
			}
		} else if uncheckpointed {
			rep.SkipReason = "segment holds un-checkpointed records and no PreRepair hook is set"
			sum.Damaged = append(sum.Damaged, rep)
			j.cfg.Logf("wal: scrub skipping repair of un-checkpointed segment %d", seg.seq)
			continue
		}
		// The swap holds j.mu so retention cannot prune the segment out
		// from under the rename.
		j.mu.Lock()
		idx := -1
		for i := range j.closed {
			if j.closed[i].seq == seg.seq {
				idx = i
				break
			}
		}
		if idx < 0 {
			j.mu.Unlock()
			continue // pruned while we scanned
		}
		newSize, quarantine, rerr := repairSegmentFile(segmentPath(j.cfg.Dir, seg.seq), data, hdrSize, spans)
		if rerr != nil {
			j.mu.Unlock()
			if firstErr == nil {
				firstErr = rerr
			}
			rep.SkipReason = fmt.Sprintf("repair failed: %v", rerr)
			sum.Damaged = append(sum.Damaged, rep)
			continue
		}
		j.closed[idx].size = newSize
		j.stats.ScrubRepairedSegments++
		j.stats.ScrubLostRecords += int64(rep.BadFrames)
		j.stats.ScrubQuarantined++
		j.mu.Unlock()
		rep.Repaired = true
		rep.Quarantined = quarantine
		rep.NewSize = newSize
		sum.Damaged = append(sum.Damaged, rep)
		j.cfg.Logf("wal: scrub repaired segment %d: dropped %d bad frame(s), kept %d record(s), quarantined original as %s",
			rep.Seq, rep.BadFrames, rep.Records, filepath.Base(quarantine))
	}
	sum.Scanned = len(picks)

	j.mu.Lock()
	j.scrubNext = picks[len(picks)-1].seq + 1
	j.mu.Unlock()
	return sum, firstErr
}

// ScrubDir scrubs every segment in a journal directory offline (the
// daemon must not have it open). With repair set, damaged segments are
// rewritten without their bad frames and the originals quarantined as
// .corrupt — except where the newest checkpoint still points into the
// region a repair would shift, which is reported and skipped. Without
// repair it is a pure report.
func ScrubDir(dir string, repair bool) ([]ScrubReport, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	cp, err := LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	var out []ScrubReport
	for _, seg := range segs {
		rep, data, hdrSize, spans, err := scrubScan(segmentPath(dir, seg.seq), seg.seq)
		if err != nil {
			return out, err
		}
		if rep.BadFrames > 0 && repair {
			switch {
			case rep.TornTail && rep.Records == 0 && rep.BadFrames == 0:
				// unreachable; kept for symmetry with the live path
			case cp != nil && seg.seq == cp.Pos.Seg && rep.FirstBadOff < cp.Pos.Off:
				rep.SkipReason = fmt.Sprintf("newest checkpoint replays from offset %d, past the first bad frame at %d", cp.Pos.Off, rep.FirstBadOff)
			default:
				newSize, quarantine, rerr := repairSegmentFile(rep.Path, data, hdrSize, spans)
				if rerr != nil {
					return out, rerr
				}
				rep.Repaired = true
				rep.Quarantined = quarantine
				rep.NewSize = newSize
			}
		} else if rep.BadFrames > 0 {
			rep.SkipReason = "repair not requested"
		} else if rep.TornTail {
			rep.SkipReason = "torn tail is not repaired"
		}
		out = append(out, rep)
	}
	return out, nil
}
