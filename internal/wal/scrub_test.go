package wal

import (
	"os"
	"path/filepath"
	"strings"
	"time"
	"testing"
)

// flipPayloadByte corrupts one byte inside the payload of the record
// ending at ends[rec] in the segment at path, returning the frame's
// start offset.
func flipPayloadByte(t *testing.T, path string, ends []int64, rec int) int64 {
	t.Helper()
	start := int64(headerSize)
	if rec > 0 {
		start = ends[rec-1]
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[start+frameSize+1] ^= 0x40 // a payload byte, leaving the frame header intact
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return start
}

func TestScrubDirRepairsBadFrame(t *testing.T) {
	dir, segPath, ends := buildJournal(t, 6)
	badOff := flipPayloadByte(t, segPath, ends, 2)

	// Report-only first: damage found, nothing touched.
	reports, err := ScrubDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].BadFrames != 1 || reports[0].Records != 5 {
		t.Fatalf("report = %+v, want 1 bad frame, 5 records", reports)
	}
	if reports[0].FirstBadOff != badOff {
		t.Errorf("first bad offset = %d, want %d", reports[0].FirstBadOff, badOff)
	}
	if reports[0].Repaired {
		t.Error("report-only scrub repaired the segment")
	}

	// Repairing scrub: bad frame dropped, original quarantined.
	reports, err = ScrubDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Repaired {
		t.Fatalf("segment not repaired: %+v", reports[0])
	}
	if _, err := os.Stat(segPath + ".corrupt"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	got := 0
	stats, err := Replay(dir, Position{}, func(pos Position, rec Record) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Errorf("repaired segment still scans torn: %+v", stats)
	}
	if got != 5 {
		t.Errorf("replayed %d records after repair, want 5", got)
	}

	// A clean follow-up scrub finds nothing.
	reports, err = ScrubDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Damaged() {
		t.Errorf("repaired segment still reports damage: %+v", reports[0])
	}
}

func TestScrubDirLeavesTornTail(t *testing.T) {
	dir, segPath, ends := buildJournal(t, 3)
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, full[:ends[2]-3], 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err := ScrubDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].TornTail || reports[0].Repaired {
		t.Fatalf("torn tail handled wrong: %+v", reports[0])
	}
	if reports[0].Records != 2 {
		t.Errorf("records = %d, want 2", reports[0].Records)
	}
}

func TestScrubDirRespectsCheckpoint(t *testing.T) {
	dir, segPath, ends := buildJournal(t, 6)
	seq, _ := parseSegmentName(filepath.Base(segPath))
	// Checkpoint covering the first four records; damage before its
	// offset must not be repaired (replay-from-checkpoint would land
	// mid-record after the shift).
	if _, err := SaveCheckpoint(dir, Position{Seg: seq, Off: ends[3]}, time.Now(), "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	flipPayloadByte(t, segPath, ends, 1)
	reports, err := ScrubDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Repaired || !strings.Contains(reports[0].SkipReason, "checkpoint") {
		t.Fatalf("repair not skipped for checkpointed region: %+v", reports[0])
	}
	// Damage past the checkpoint offset is repairable.
	dir2, segPath2, ends2 := buildJournal(t, 6)
	seq2, _ := parseSegmentName(filepath.Base(segPath2))
	if _, err := SaveCheckpoint(dir2, Position{Seg: seq2, Off: ends2[1]}, time.Now(), "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	flipPayloadByte(t, segPath2, ends2, 4)
	reports, err = ScrubDir(dir2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Repaired {
		t.Fatalf("repair skipped for post-checkpoint damage: %+v", reports[0])
	}
}

func TestJournalScrubRepairsSealedSegment(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1}) // rotate after every record
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 4; i++ {
		if _, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sealedSeq := uint64(2)
	path := segmentPath(dir, sealedSeq)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+frameSize+1] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Without a PreRepair hook, un-checkpointed damage is only reported.
	sum, err := j.Scrub(ScrubConfig{MaxSegments: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Damaged) != 1 || sum.Damaged[0].Repaired {
		t.Fatalf("un-checkpointed damage was repaired: %+v", sum.Damaged)
	}

	// With the hook (the server's checkpoint-first contract), repair runs.
	var hookSeq uint64
	var hookUnchk bool
	sum, err = j.Scrub(ScrubConfig{MaxSegments: 10, PreRepair: func(seq uint64, unchk bool) error {
		hookSeq, hookUnchk = seq, unchk
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Damaged) != 1 || !sum.Damaged[0].Repaired {
		t.Fatalf("damage not repaired: %+v", sum.Damaged)
	}
	if hookSeq != sealedSeq || !hookUnchk {
		t.Errorf("hook saw seq %d unchk %v, want %d true", hookSeq, hookUnchk, sealedSeq)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("quarantine missing: %v", err)
	}
	st := j.Stats()
	if st.ScrubRepairedSegments != 1 || st.ScrubLostRecords != 1 || st.ScrubQuarantined != 1 {
		t.Errorf("scrub stats = %+v", st)
	}
	if st.ScrubScans == 0 {
		t.Error("no scans counted")
	}

	// The journal stays usable and the damaged record is the only loss.
	if _, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, 9)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := 0
	stats, err := Replay(dir, Position{}, func(pos Position, rec Record) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated || len(stats.MissingSegments) != 0 {
		t.Errorf("replay after repair: %+v", stats)
	}
	if got != 4 { // 5 appended, 1 lost to the flipped frame
		t.Errorf("replayed %d records, want 4", got)
	}
}

func TestJournalScrubCursorCycles(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 2, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// 5 sealed segments; one-at-a-time passes must cover all of them
	// and wrap.
	for pass := 0; pass < 7; pass++ {
		if _, err := j.Scrub(ScrubConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.ScrubScans != 7 {
		t.Errorf("scans = %d, want 7", st.ScrubScans)
	}
}
