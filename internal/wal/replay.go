package wal

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// SegmentInfo describes one scanned segment file.
type SegmentInfo struct {
	// Seq is the segment sequence number.
	Seq uint64
	// Path is the segment file path.
	Path string
	// Size is the file size on disk.
	Size int64
	// Records is the number of valid records scanned.
	Records int
	// ValidBytes is the offset just past the last valid record (at
	// least the header size for a well-headed segment); truncating the
	// file here discards exactly the torn tail.
	ValidBytes int64
	// Torn reports whether the segment ends in bytes that do not form a
	// complete valid record — the signature of a crash mid-write or of
	// on-disk corruption.
	Torn bool
	// TornReason says what the scanner hit when Torn (short frame,
	// CRC mismatch, bad header, ...).
	TornReason string
	// Version is the segment's on-disk format version.
	Version uint32
	// ModelHash is the hex model compatibility hash from the segment
	// header; empty for version-1 segments, which predate model
	// stamping.
	ModelHash string
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Records is how many valid records were delivered.
	Records int
	// Snapshots is the total snapshot count across delivered batches.
	Snapshots int
	// Truncated reports that a segment ended in a torn or corrupt
	// record; replay stopped cleanly at the last valid record.
	Truncated bool
	// TruncatedAt is where scanning stopped when Truncated.
	TruncatedAt Position
	// MissingSegments lists sequence numbers that should exist between
	// the replay start and the newest segment but are not on disk —
	// records in them are gone (retention pruned past a checkpoint, or
	// files were deleted out of band). Replay still delivers what
	// remains; callers must surface the gap loudly, because the stream
	// is no longer contiguous.
	MissingSegments []uint64
}

// Replay scans the journal directory from position `from`, decoding
// every valid record in order and passing it to fn along with the
// position just past it (the value to store in a checkpoint covering
// the record). Scanning a segment stops cleanly at the first torn or
// corrupt record: the partial record is dropped, no error is returned,
// and ReplayStats.Truncated is set. A torn record in a non-final
// segment also stops the whole replay — later records cannot be
// trusted to belong to the stream — which Replay reports the same way.
// fn returning an error aborts the replay with that error.
func Replay(dir string, from Position, fn func(pos Position, rec Record) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	// Expected next sequence number, for gap detection. A checkpointed
	// start pins it to from.Seg — that segment must still exist. With no
	// checkpoint (from.Seg 0) the oldest surviving segment is the
	// legitimate start (retention may have pruned older ones), and only
	// gaps between surviving segments are reportable.
	expect := from.Seg
	for _, seg := range segs {
		if seg.seq < from.Seg {
			continue
		}
		if expect == 0 {
			expect = seg.seq
		}
		for ; expect < seg.seq; expect++ {
			stats.MissingSegments = append(stats.MissingSegments, expect)
		}
		expect = seg.seq + 1
		var startOff int64
		if seg.seq == from.Seg {
			startOff = from.Off
		}
		info, err := scanSegment(segmentPath(dir, seg.seq), seg.seq, startOff, func(end Position, rec Record) error {
			stats.Records++
			stats.Snapshots += len(rec.Snaps)
			return fn(end, rec)
		})
		if err != nil {
			return stats, err
		}
		stats.Segments++
		if info.Torn {
			stats.Truncated = true
			stats.TruncatedAt = Position{Seg: seg.seq, Off: info.ValidBytes}
			break
		}
	}
	return stats, nil
}

// ScanSegment scans one segment file, calling fn (when non-nil) for
// every valid record with the position just past it. It never returns
// an error for torn or corrupt data — that is reported in the
// SegmentInfo — only for I/O failures or a non-segment path.
func ScanSegment(path string, fn func(pos Position, rec Record) error) (SegmentInfo, error) {
	seq, ok := parseSegmentName(filepath.Base(path))
	if !ok {
		return SegmentInfo{}, fmt.Errorf("wal: %s is not a journal segment", path)
	}
	return scanSegment(path, seq, 0, fn)
}

// scanSegment walks records from startOff (0 means just past the
// header, whose size depends on the segment's format version) to the
// first invalid frame or EOF.
func scanSegment(path string, seq uint64, startOff int64, fn func(pos Position, rec Record) error) (SegmentInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("wal: stat segment %s: %w", path, err)
	}
	info := SegmentInfo{Seq: seq, Path: path, Size: st.Size()}

	hdrSize, err := readSegmentHeader(f, &info)
	if err != nil || info.Torn {
		return info, err
	}
	info.ValidBytes = hdrSize
	if startOff > hdrSize {
		if _, err := f.Seek(startOff, io.SeekStart); err != nil {
			return info, fmt.Errorf("wal: seek segment %s: %w", path, err)
		}
		info.ValidBytes = startOff
	}

	var frame [frameSize]byte
	var payload []byte
	off := info.ValidBytes
	for {
		n, err := io.ReadFull(f, frame[:])
		if err == io.EOF {
			return info, nil // clean end at a record boundary
		}
		if err != nil {
			if err == io.ErrUnexpectedEOF {
				info.Torn, info.TornReason = true, fmt.Sprintf("torn frame (%d of %d bytes) at offset %d", n, frameSize, off)
				return info, nil
			}
			return info, fmt.Errorf("wal: read segment %s: %w", path, err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxPayload {
			info.Torn, info.TornReason = true, fmt.Sprintf("implausible record length %d at offset %d", length, off)
			return info, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				info.Torn, info.TornReason = true, fmt.Sprintf("torn payload at offset %d", off)
				return info, nil
			}
			return info, fmt.Errorf("wal: read segment %s: %w", path, err)
		}
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			info.Torn, info.TornReason = true, fmt.Sprintf("CRC mismatch at offset %d (want %08x, got %08x)", off, crc, got)
			return info, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			info.Torn, info.TornReason = true, fmt.Sprintf("undecodable record at offset %d: %v", off, err)
			return info, nil
		}
		off += frameSize + int64(length)
		info.ValidBytes = off
		info.Records++
		if fn != nil {
			if err := fn(Position{Seg: seq, Off: off}, rec); err != nil {
				return info, err
			}
		}
	}
}

// readSegmentHeader validates a segment's header, filling the info's
// Version/ModelHash, and returns the header size (where records start).
// A torn or unsupported header is reported via info.Torn with
// ValidBytes 0, never as an error.
func readSegmentHeader(f *os.File, info *SegmentInfo) (int64, error) {
	var pre [headerPrefixSize]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil {
		info.Torn, info.TornReason = true, "short segment header"
		return 0, nil
	}
	if [4]byte(pre[:4]) != segmentMagic {
		info.Torn, info.TornReason = true, "bad segment magic"
		return 0, nil
	}
	info.Version = binary.LittleEndian.Uint32(pre[4:])
	switch info.Version {
	case segmentVersionV1:
		// Pre-model-hash format: records start right after the prefix.
		return headerPrefixSize, nil
	case segmentVersion:
		var h [modelHashSize]byte
		if _, err := io.ReadFull(f, h[:]); err != nil {
			info.Torn, info.TornReason = true, "short segment header"
			return 0, nil
		}
		info.ModelHash = hex.EncodeToString(h[:])
		return headerSize, nil
	default:
		info.Torn, info.TornReason = true, fmt.Sprintf("unsupported segment version %d", info.Version)
		return 0, nil
	}
}

// VerifyDir scans every segment in dir and returns their infos, oldest
// first.
func VerifyDir(dir string) ([]SegmentInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(segs))
	for _, seg := range segs {
		info, err := scanSegment(segmentPath(dir, seg.seq), seg.seq, 0, nil)
		if err != nil {
			return out, err
		}
		out = append(out, info)
	}
	return out, nil
}

// SegmentHashes reads only the headers of every segment with seq >=
// from and returns seq → hex model hash ("" for version-1 segments).
// Torn-headed segments are skipped — they carry no replayable records.
// Recovery uses this to refuse replaying records written under a model
// other than the one it loaded.
func SegmentHashes(dir string, from uint64) (map[uint64]string, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]string, len(segs))
	for _, seg := range segs {
		if seg.seq < from {
			continue
		}
		path := segmentPath(dir, seg.seq)
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment %s: %w", path, err)
		}
		var info SegmentInfo
		_, err = readSegmentHeader(f, &info)
		f.Close()
		if err != nil {
			return nil, err
		}
		if info.Torn {
			continue
		}
		out[seg.seq] = info.ModelHash
	}
	return out, nil
}

// TruncateAtCorruption truncates every torn segment in dir at its last
// valid record boundary, dropping the partial tail so subsequent scans
// are clean. A segment with a bad header (ValidBytes == 0) is removed
// entirely. It returns the segments that were modified.
func TruncateAtCorruption(dir string) ([]SegmentInfo, error) {
	infos, err := VerifyDir(dir)
	if err != nil {
		return nil, err
	}
	var fixed []SegmentInfo
	for _, info := range infos {
		if !info.Torn {
			continue
		}
		if info.ValidBytes <= 0 {
			if err := os.Remove(info.Path); err != nil {
				return fixed, fmt.Errorf("wal: remove headerless segment %s: %w", info.Path, err)
			}
		} else if err := os.Truncate(info.Path, info.ValidBytes); err != nil {
			return fixed, fmt.Errorf("wal: truncate %s at %d: %w", info.Path, info.ValidBytes, err)
		}
		fixed = append(fixed, info)
	}
	return fixed, nil
}
