package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Checkpoint is a durable snapshot of serving state (the server's
// serialized per-VM sessions) paired with the journal position it
// covers: recovery loads the newest readable checkpoint and replays
// the journal from Pos.
type Checkpoint struct {
	// Seq orders checkpoints; the highest readable one wins.
	Seq uint64 `json:"seq"`
	// Pos is the journal position the payload state covers: every
	// record at or before Pos is folded into Payload, every record
	// after it must be replayed.
	Pos Position `json:"pos"`
	// TakenAtUnixNS is when the checkpoint was captured.
	TakenAtUnixNS int64 `json:"taken_at_unix_ns"`
	// ModelHash is the hex compatibility hash of the model the payload
	// sessions were serialized under. Recovery refuses a checkpoint whose
	// hash differs from the loaded model's: the serialized drift
	// accumulators, phase segmentation, and open-set counts are only
	// meaningful under the model that produced them. Empty on
	// checkpoints written before model stamping.
	ModelHash string `json:"model_hash,omitempty"`
	// Payload is the caller-defined serialized state.
	Payload json.RawMessage `json:"payload"`
}

// TakenAt returns the capture time.
func (c Checkpoint) TakenAt() time.Time { return time.Unix(0, c.TakenAtUnixNS) }

// checkpointsToKeep is how many recent checkpoint files survive
// pruning: the newest plus one fallback in case the newest is
// unreadable (it is written atomically, so that means disk damage, not
// a crash mid-write).
const checkpointsToKeep = 2

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%08d.ckpt", seq))
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt")
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// listCheckpoints returns the checkpoint sequence numbers in dir,
// oldest first.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range entries {
		if seq, ok := parseCheckpointName(e.Name()); ok {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// SaveCheckpoint atomically writes a new checkpoint covering pos into
// the journal directory — temp file, fsync, rename, exactly like the
// application database's SaveFile — then prunes all but the newest
// checkpointsToKeep files. modelHash is the hex compatibility hash of
// the model the payload was serialized under ("" to leave the
// checkpoint unstamped). It returns the new checkpoint's sequence.
func SaveCheckpoint(dir string, pos Position, takenAt time.Time, modelHash string, payload []byte) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	seq := uint64(1)
	if n := len(seqs); n > 0 {
		seq = seqs[n-1] + 1
	}
	doc, err := json.Marshal(Checkpoint{
		Seq:           seq,
		Pos:           pos,
		TakenAtUnixNS: takenAt.UnixNano(),
		ModelHash:     modelHash,
		Payload:       payload,
	})
	if err != nil {
		return 0, fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	path := checkpointPath(dir, seq)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("wal: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	fail := func(err error) (uint64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if _, err := f.Write(doc); err != nil {
		return fail(fmt.Errorf("wal: write %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("wal: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("wal: close %s: %w", tmp, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: rename %s -> %s: %w", tmp, path, err)
	}
	// Prune older checkpoints; failures here are cosmetic (stale files),
	// not correctness problems, so they do not fail the save.
	for i := 0; i+checkpointsToKeep <= len(seqs); i++ {
		os.Remove(checkpointPath(dir, seqs[i]))
	}
	return seq, nil
}

// LatestCheckpoint returns the newest readable checkpoint in dir, or
// nil if none exists. An unreadable newer checkpoint is skipped in
// favour of an older readable one.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		b, err := os.ReadFile(checkpointPath(dir, seqs[i]))
		if err != nil {
			continue
		}
		var c Checkpoint
		if err := json.Unmarshal(b, &c); err != nil {
			continue
		}
		return &c, nil
	}
	return nil, nil
}
