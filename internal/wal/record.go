package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/metrics"
)

// RecordType tags what a journal record carries.
type RecordType byte

const (
	// RecordBatch is one validated ingest batch for a single VM.
	RecordBatch RecordType = 1
	// RecordFinalize marks a VM's session as finalized: the record has
	// no snapshots, and replay must not resurrect the session past it.
	RecordFinalize RecordType = 2
)

// Record is one decoded journal entry.
type Record struct {
	Type RecordType
	// VM is the session the record belongs to.
	VM string
	// Snaps carries the batch payload (RecordBatch only). Decoded
	// snapshots have Node set to VM.
	Snaps []metrics.Snapshot
}

// On-disk framing. Each segment starts with a header: magic + format
// version (8 bytes), and from format version 2 a further 32-byte model
// compatibility hash identifying the classifier every record in the
// segment was appended under (a hot swap rotates to a fresh segment, so
// one segment never mixes models). Version-1 segments (8-byte header,
// no hash) remain readable. Every record is
//
//	uint32 payload length | uint32 CRC32C of payload | payload
//
// all little-endian. The CRC covers the payload only: a torn header is
// detected by the length/CRC pair being garbage, a torn payload by the
// CRC mismatch. Payloads are
//
//	byte type | u16 len(vm) | vm |                       (finalize)
//	byte type | u16 len(vm) | vm | u32 count | u16 dims |
//	    count × (i64 time-ns | dims × f64)               (batch)
const (
	segmentVersion   = 2
	segmentVersionV1 = 1
	headerPrefixSize = 8                                // magic + version
	modelHashSize    = 32                               // sha256
	headerSize       = headerPrefixSize + modelHashSize // version-2 header
	frameSize        = 8                                // length + CRC
	// maxPayload rejects garbage lengths during replay before any
	// allocation happens: no legitimate record approaches 64 MiB.
	maxPayload = 64 << 20
	// maxVMName bounds the encoded VM-name length (u16 on disk).
	maxVMName = 1 << 10
)

// SegmentFormatVersion is the journal's on-disk segment format version.
// It is an input to the model compatibility hash: a model trained under
// one journal format must not silently serve a journal written under
// another.
const SegmentFormatVersion = segmentVersion

var segmentMagic = [4]byte{'A', 'C', 'W', 'L'}

// castagnoli is the CRC32C polynomial table; Castagnoli has hardware
// support on amd64/arm64, which keeps the checksum off the append
// path's profile.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendBatchPayload encodes a batch record payload onto buf.
func appendBatchPayload(buf []byte, vm string, snaps []metrics.Snapshot) ([]byte, error) {
	if len(vm) == 0 || len(vm) > maxVMName {
		return buf, fmt.Errorf("wal: vm name length %d outside [1,%d]", len(vm), maxVMName)
	}
	if len(snaps) == 0 {
		return buf, fmt.Errorf("wal: empty batch for %q", vm)
	}
	dims := len(snaps[0].Values)
	if dims == 0 || dims > 1<<15 {
		return buf, fmt.Errorf("wal: batch for %q has %d values per snapshot", vm, dims)
	}
	for i := range snaps {
		if len(snaps[i].Values) != dims {
			return buf, fmt.Errorf("wal: batch for %q mixes %d- and %d-value snapshots",
				vm, dims, len(snaps[i].Values))
		}
	}
	buf = append(buf, byte(RecordBatch))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(vm)))
	buf = append(buf, vm...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snaps)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(dims))
	for i := range snaps {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(snaps[i].Time))
		for _, v := range snaps[i].Values {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// appendFinalizePayload encodes a finalize record payload onto buf.
func appendFinalizePayload(buf []byte, vm string) ([]byte, error) {
	if len(vm) == 0 || len(vm) > maxVMName {
		return buf, fmt.Errorf("wal: vm name length %d outside [1,%d]", len(vm), maxVMName)
	}
	buf = append(buf, byte(RecordFinalize))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(vm)))
	buf = append(buf, vm...)
	return buf, nil
}

// decodePayload parses one record payload. It returns an error for any
// malformed payload; replay treats that the same as a CRC failure.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 3 {
		return Record{}, fmt.Errorf("wal: payload too short (%d bytes)", len(p))
	}
	typ := RecordType(p[0])
	vmLen := int(binary.LittleEndian.Uint16(p[1:3]))
	p = p[3:]
	if vmLen == 0 || vmLen > maxVMName || vmLen > len(p) {
		return Record{}, fmt.Errorf("wal: vm name length %d invalid", vmLen)
	}
	vm := string(p[:vmLen])
	p = p[vmLen:]
	switch typ {
	case RecordFinalize:
		if len(p) != 0 {
			return Record{}, fmt.Errorf("wal: finalize record has %d trailing bytes", len(p))
		}
		return Record{Type: RecordFinalize, VM: vm}, nil
	case RecordBatch:
		if len(p) < 6 {
			return Record{}, fmt.Errorf("wal: batch record truncated")
		}
		count := int(binary.LittleEndian.Uint32(p[:4]))
		dims := int(binary.LittleEndian.Uint16(p[4:6]))
		p = p[6:]
		if count <= 0 || dims <= 0 {
			return Record{}, fmt.Errorf("wal: batch record has count %d, dims %d", count, dims)
		}
		per := 8 + 8*dims
		if len(p) != count*per {
			return Record{}, fmt.Errorf("wal: batch record body is %d bytes, want %d", len(p), count*per)
		}
		snaps := make([]metrics.Snapshot, count)
		for i := 0; i < count; i++ {
			at := time.Duration(binary.LittleEndian.Uint64(p[:8]))
			p = p[8:]
			vals := make([]float64, dims)
			for j := 0; j < dims; j++ {
				vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(p[:8]))
				p = p[8:]
			}
			snaps[i] = metrics.Snapshot{Time: at, Node: vm, Values: vals}
		}
		return Record{Type: RecordBatch, VM: vm, Snaps: snaps}, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", typ)
	}
}
