package wal

import (
	"encoding/binary"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testHash(fill byte) [modelHashSize]byte {
	var h [modelHashSize]byte
	for i := range h {
		h[i] = fill
	}
	return h
}

func TestSegmentHeaderCarriesModelHash(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	h := testHash(0xAB)
	if err := j.SetModelHash(h); err != nil {
		t.Fatalf("SetModelHash: %v", err)
	}
	if got := j.ModelHash(); got != h {
		t.Fatalf("ModelHash = %x, want %x", got, h)
	}
	if _, err := j.AppendBatch("vm-a", testSnaps("vm-a", 3, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	infos, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if len(infos) != 1 {
		t.Fatalf("segments = %d, want 1 (empty stamped segment must be replaced in place, not rotated)", len(infos))
	}
	if infos[0].Version != segmentVersion {
		t.Fatalf("segment version = %d, want %d", infos[0].Version, segmentVersion)
	}
	if infos[0].ModelHash != hex.EncodeToString(h[:]) {
		t.Fatalf("segment hash = %s, want %x", infos[0].ModelHash, h)
	}
	if infos[0].Records != 1 {
		t.Fatalf("records = %d, want 1", infos[0].Records)
	}
}

func TestSetModelHashRotatesNonEmptySegment(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	h1, h2 := testHash(1), testHash(2)
	if err := j.SetModelHash(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch("vm-a", testSnaps("vm-a", 2, 4, 1)); err != nil {
		t.Fatal(err)
	}
	// The active segment has records: a hash change must rotate so one
	// segment never mixes models.
	if err := j.SetModelHash(h2); err != nil {
		t.Fatal(err)
	}
	if err := j.SetModelHash(h2); err != nil { // no-op repeat
		t.Fatal(err)
	}
	if _, err := j.AppendBatch("vm-a", testSnaps("vm-a", 2, 4, 9)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	hashes, err := SegmentHashes(dir, 0)
	if err != nil {
		t.Fatalf("SegmentHashes: %v", err)
	}
	if len(hashes) != 2 {
		t.Fatalf("segments = %v, want 2", hashes)
	}
	if hashes[1] != hex.EncodeToString(h1[:]) || hashes[2] != hex.EncodeToString(h2[:]) {
		t.Fatalf("hashes = %v, want seg1=%x seg2=%x", hashes, h1, h2)
	}

	// The from bound skips earlier segments.
	tail, err := SegmentHashes(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[2] != hex.EncodeToString(h2[:]) {
		t.Fatalf("SegmentHashes(from=2) = %v", tail)
	}

	// Replay still walks both segments across the model boundary.
	var records int
	replay, err := Replay(dir, Position{}, func(pos Position, rec Record) error {
		records++
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if records != 2 || replay.Truncated {
		t.Fatalf("replayed %d record(s), truncated=%v", records, replay.Truncated)
	}
}

// A v1 segment (8-byte header, written by older daemons) must still
// read: its version reports 1 and its model hash is empty.
func TestV1SegmentBackCompat(t *testing.T) {
	dir := t.TempDir()
	// Forge a v1 segment: old header followed by one valid record frame,
	// produced by writing through a v2 journal and surgically shrinking
	// the header.
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if _, err := j.AppendBatch("vm-a", testSnaps("vm-a", 2, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v1 := make([]byte, 0, len(raw)-modelHashSize)
	v1 = append(v1, raw[:4]...) // magic
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], segmentVersionV1)
	v1 = append(v1, ver[:]...)
	v1 = append(v1, raw[headerSize:]...) // records, unchanged
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if len(infos) != 1 || infos[0].Version != segmentVersionV1 || infos[0].ModelHash != "" {
		t.Fatalf("v1 segment info = %+v", infos[0])
	}
	if infos[0].Torn || infos[0].Records != 1 {
		t.Fatalf("v1 segment did not replay cleanly: %+v", infos[0])
	}
	hashes, err := SegmentHashes(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := hashes[1]; !ok || h != "" {
		t.Fatalf("SegmentHashes on v1 = %v, want seg1 present with empty hash", hashes)
	}

	// And appending through a reopened journal continues at v2 in a new
	// segment without disturbing the v1 one.
	j2 := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if err := j2.SetModelHash(testHash(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.AppendBatch("vm-b", testSnaps("vm-b", 1, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	var count int
	if _, err := Replay(dir, Position{}, func(Position, Record) error { count++; return nil }); err != nil {
		t.Fatalf("Replay across v1+v2: %v", err)
	}
	if count != 2 {
		t.Fatalf("replayed %d record(s) across v1+v2 segments, want 2", count)
	}
}

// A header torn mid-hash is reported torn, not misread, and
// SegmentHashes skips it.
func TestTornHeaderSegment(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if err := j.SetModelHash(testHash(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch("vm-a", testSnaps("vm-a", 1, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, 1)
	if err := os.Truncate(path, headerPrefixSize+5); err != nil { // mid-hash
		t.Fatal(err)
	}
	infos, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Torn {
		t.Fatalf("torn-header segment not reported torn: %+v", infos)
	}
	hashes, err := SegmentHashes(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 0 {
		t.Fatalf("SegmentHashes included a torn-headed segment: %v", hashes)
	}
}

func TestCheckpointModelHashRoundtrip(t *testing.T) {
	dir := t.TempDir()
	at := time.Unix(1700000000, 0)
	hash := "deadbeef"
	if _, err := SaveCheckpoint(dir, Position{Seg: 2, Off: 99}, at, hash, []byte(`{"sessions":[]}`)); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	cp, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if cp == nil || cp.ModelHash != hash {
		t.Fatalf("checkpoint ModelHash = %+v, want %q", cp, hash)
	}
	// Empty hash (legacy daemons) is preserved as empty, not invented.
	if _, err := SaveCheckpoint(dir, Position{Seg: 3}, at.Add(time.Second), "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	cp, err = LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.ModelHash != "" {
		t.Fatalf("legacy checkpoint hash = %q, want empty", cp.ModelHash)
	}
}

// TruncateAtCorruption must not delete a valid v1 segment just because
// its header is shorter than v2's.
func TestTruncateKeepsValidV1Segment(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if _, err := j.AppendBatch("vm-a", testSnaps("vm-a", 1, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Shrink to v1 form (empty v1 segment: header only).
	path := segmentPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte{}, raw[:4]...)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], segmentVersionV1)
	v1 = append(v1, ver[:]...)
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	fixed, err := TruncateAtCorruption(dir)
	if err != nil {
		t.Fatalf("TruncateAtCorruption: %v", err)
	}
	if len(fixed) != 0 {
		t.Fatalf("valid empty v1 segment was modified: %+v", fixed)
	}
	if _, err := os.Stat(filepath.Join(dir, filepath.Base(path))); err != nil {
		t.Fatalf("valid v1 segment deleted: %v", err)
	}
}
