package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// buildJournal writes a small single-segment journal and returns its
// directory, the segment path, and the end offset of every record (in
// order), so tests can reason about which truncation points keep which
// records.
func buildJournal(t *testing.T, records int) (dir, segPath string, ends []int64) {
	t.Helper()
	dir = t.TempDir()
	j, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		pos, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, pos.Off)
	}
	segPath = segmentPath(dir, j.Pos().Seg)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, segPath, ends
}

// TestTornWriteReplayStopsCleanly truncates a journal segment at every
// byte offset and asserts replay never panics, never errors, and
// always delivers exactly the records that fit wholly before the cut —
// the crash-mid-write contract.
func TestTornWriteReplayStopsCleanly(t *testing.T) {
	_, segPath, ends := buildJournal(t, 6)
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		torn := filepath.Join(dir, filepath.Base(segPath))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords := 0
		for _, end := range ends {
			if end <= cut {
				wantRecords++
			}
		}
		got := 0
		stats, err := Replay(dir, Position{}, func(pos Position, rec Record) error {
			got++
			if rec.VM != "vm" || len(rec.Snaps) != 2 {
				t.Fatalf("cut %d: corrupt record surfaced: %+v", cut, rec)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		if got != wantRecords {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, wantRecords)
		}
		// A cut is clean only when it lands exactly on a record (or
		// header) boundary; everywhere else the tail is torn.
		wantTorn := cut != headerSize
		for _, end := range ends {
			if cut == end {
				wantTorn = false
			}
		}
		if stats.Truncated != wantTorn {
			t.Fatalf("cut %d: truncated = %v, want %v (stats %+v)", cut, stats.Truncated, wantTorn, stats)
		}
	}
}

// TestCorruptPayloadDetected flips one payload byte mid-segment; the
// CRC must catch it and replay must stop before the damaged record.
func TestCorruptPayloadDetected(t *testing.T) {
	_, segPath, ends := buildJournal(t, 5)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the third record's payload (past its frame).
	data[ends[1]+frameSize+4] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := 0
	stats, err := Replay(filepath.Dir(segPath), Position{}, func(Position, Record) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 || !stats.Truncated {
		t.Errorf("replayed %d records (stats %+v), want 2 and truncated", got, stats)
	}
	if stats.TruncatedAt.Off != ends[1] {
		t.Errorf("truncated at %+v, want offset %d", stats.TruncatedAt, ends[1])
	}
}

// TestTruncateAtCorruption repairs a torn segment in place so later
// scans are clean.
func TestTruncateAtCorruption(t *testing.T) {
	dir, segPath, ends := buildJournal(t, 4)
	// Tear the last record in half.
	cut := ends[2] + (ends[3]-ends[2])/2
	if err := os.Truncate(segPath, cut); err != nil {
		t.Fatal(err)
	}

	infos, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Torn || infos[0].ValidBytes != ends[2] {
		t.Fatalf("verify = %+v, want one torn segment valid to %d", infos, ends[2])
	}

	fixed, err := TruncateAtCorruption(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixed %d segments, want 1", len(fixed))
	}
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != ends[2] {
		t.Errorf("truncated size = %d, want %d", st.Size(), ends[2])
	}
	infos, err = VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Torn || infos[0].Records != 3 {
		t.Errorf("post-repair verify = %+v, want clean with 3 records", infos[0])
	}
	// Repair is idempotent.
	fixed, err = TruncateAtCorruption(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 0 {
		t.Errorf("second repair fixed %d segments, want 0", len(fixed))
	}
}

// TestReplayReportsMissingSegments deletes a mid-stream segment file:
// replay must deliver what remains but flag the hole instead of
// pretending the stream is contiguous.
func TestReplayReportsMissingSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1}) // rotate after every record
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segmentPath(dir, 2)); err != nil {
		t.Fatal(err)
	}
	got := 0
	stats, err := Replay(dir, Position{}, func(Position, Record) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("replayed %d records, want 3 (one lost with the deleted segment)", got)
	}
	if len(stats.MissingSegments) != 1 || stats.MissingSegments[0] != 2 {
		t.Errorf("MissingSegments = %v, want [2]", stats.MissingSegments)
	}
	// A checkpointed start that points at a deleted segment is a gap too.
	stats, err = Replay(dir, Position{Seg: 2}, func(Position, Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MissingSegments) != 1 || stats.MissingSegments[0] != 2 {
		t.Errorf("MissingSegments from checkpointed start = %v, want [2]", stats.MissingSegments)
	}
	// Segments pruned *before* the start position are not gaps.
	stats, err = Replay(dir, Position{Seg: 3}, func(Position, Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MissingSegments) != 0 {
		t.Errorf("MissingSegments past the hole = %v, want none", stats.MissingSegments)
	}
}

// TestHeaderlessSegmentRemoved exercises the bad-header path: a
// segment whose header never made it to disk is dropped entirely.
func TestHeaderlessSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(dir, Position{}, func(Position, Record) error {
		t.Error("record from headerless segment")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Errorf("stats = %+v, want truncated", stats)
	}
	if _, err := TruncateAtCorruption(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("headerless segment still on disk (err %v)", err)
	}
}
