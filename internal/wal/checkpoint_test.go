package wal

import (
	"os"
	"testing"
	"time"
)

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		t.Fatalf("empty dir yielded checkpoint %+v", cp)
	}

	at := time.Unix(1700000000, 123)
	seq, err := SaveCheckpoint(dir, Position{Seg: 3, Off: 4096}, at, "", []byte(`{"sessions":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Errorf("first checkpoint seq = %d, want 1", seq)
	}
	cp, err = LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Seq != 1 || cp.Pos != (Position{Seg: 3, Off: 4096}) || !cp.TakenAt().Equal(at) {
		t.Fatalf("loaded checkpoint = %+v", cp)
	}
	if string(cp.Payload) != `{"sessions":[]}` {
		t.Errorf("payload = %s", cp.Payload)
	}
}

func TestCheckpointPruningKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		if _, err := SaveCheckpoint(dir, Position{Seg: uint64(i + 1)}, time.Unix(int64(i), 0), "", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != checkpointsToKeep {
		t.Fatalf("checkpoints on disk = %v, want %d newest", seqs, checkpointsToKeep)
	}
	cp, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Seq != 5 || cp.Pos.Seg != 5 {
		t.Errorf("latest = %+v, want seq 5", cp)
	}
}

func TestCorruptLatestFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	if _, err := SaveCheckpoint(dir, Position{Seg: 1, Off: 10}, time.Unix(1, 0), "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveCheckpoint(dir, Position{Seg: 2, Off: 20}, time.Unix(2, 0), "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointPath(dir, 2), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Seq != 1 || cp.Pos.Seg != 1 {
		t.Errorf("fallback checkpoint = %+v, want seq 1", cp)
	}
}
