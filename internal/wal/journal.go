// Package wal implements the durable-ingest substrate of the
// classification daemon: an append-only, segment-rotated write-ahead
// journal of the profiler stream plus atomically written session
// checkpoints, so that recovery after a crash is "load the latest
// checkpoint, replay the journal tail". Records are length-prefixed and
// CRC32C-protected; a torn write at the tail (the normal crash shape)
// is detected and replay stops cleanly at the last valid record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Policy selects when the journal calls fsync.
type Policy int

const (
	// FsyncInterval syncs from a background ticker (Config.FsyncEvery):
	// bounded data loss, near-zero append latency. The default.
	FsyncInterval Policy = iota
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the price of one fsync per batch.
	FsyncAlways
	// FsyncNever leaves syncing to the operating system's writeback:
	// fastest, loses up to the dirty page cache on power failure (an
	// ordinary process crash loses nothing — the pages are already in
	// the kernel).
	FsyncNever
)

// ParsePolicy maps the appclassd -fsync flag values onto policies.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Position addresses a byte boundary in the journal: the segment
// sequence number and the offset within it. Append returns the position
// after the appended record; a checkpoint stores the position its state
// covers, and replay resumes from it.
type Position struct {
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Less orders positions by segment, then offset.
func (p Position) Less(o Position) bool {
	if p.Seg != o.Seg {
		return p.Seg < o.Seg
	}
	return p.Off < o.Off
}

// Config parameterizes a journal.
type Config struct {
	// Dir is the journal directory (required; created if absent).
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Zero means 8 MiB.
	SegmentBytes int64
	// MaxBytes caps the total size of closed segments; once exceeded,
	// the oldest closed segments are deleted (observable via
	// Stats.TruncatedSegments). Zero means unlimited. The active segment
	// is never deleted.
	MaxBytes int64
	// Fsync selects the sync policy. The zero value is FsyncInterval.
	Fsync Policy
	// FsyncEvery is the FsyncInterval cadence. Zero means 1 second.
	FsyncEvery time.Duration
	// GroupCommit coalesces FsyncAlways appends: concurrently arriving
	// batches share one fsync — the first appender past the write
	// becomes the leader and syncs, followers block until the durable
	// append count covers their record — so durability stops
	// serializing throughput under concurrency while every acknowledged
	// record is still on stable storage before its append returns.
	// Ignored under other policies.
	GroupCommit bool
	// GroupCommitWindow makes the group-commit leader wait this long
	// before syncing, widening the coalescing window at the price of
	// that much added append latency. Zero means the leader syncs
	// immediately (followers that arrive during the in-flight fsync
	// still coalesce into the next one).
	GroupCommitWindow time.Duration
	// Now supplies wall-clock time; tests inject fake clocks. Nil means
	// time.Now.
	Now func() time.Time
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
	// OpenSegmentFile creates active segment files. Nil means os.OpenFile.
	// Fault-injection harnesses substitute an opener whose files fail
	// writes or fsyncs on command (transient ENOSPC being the canonical
	// scenario) to drive the daemon's degraded-durability path.
	OpenSegmentFile func(name string, flag int, perm os.FileMode) (SegmentFile, error)
}

// SegmentFile is the subset of *os.File the journal needs from its
// active segment. Production journals use real files; chaos tests
// substitute failing ones via Config.OpenSegmentFile.
type SegmentFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Stats is a point-in-time view of the journal's depth and activity,
// rendered as gauges in the daemon's /metricsz.
type Stats struct {
	// Segments counts segment files on disk, including the active one.
	Segments int
	// Bytes is the total size of all segments on disk.
	Bytes int64
	// ActiveSeg is the sequence number of the segment being appended to.
	ActiveSeg uint64
	// Appends counts records appended since Open.
	Appends int64
	// Syncs counts fsync calls since Open.
	Syncs int64
	// Rotations counts segment rotations since Open.
	Rotations int64
	// TruncatedSegments counts closed segments deleted by the MaxBytes
	// retention cap since Open — nonzero means the journal no longer
	// holds the full history since the last checkpoint.
	TruncatedSegments int64
	// LastSync is when the journal last fsynced (zero if never).
	LastSync time.Time
	// ScrubScans counts sealed segments examined by Scrub since Open.
	ScrubScans int64
	// ScrubRepairedSegments counts segments Scrub rewrote to drop
	// damaged frames.
	ScrubRepairedSegments int64
	// ScrubLostRecords counts records dropped with those frames — the
	// only records lost to the detected corruption.
	ScrubLostRecords int64
	// ScrubQuarantined counts damaged originals preserved as .corrupt.
	ScrubQuarantined int64
}

// closedSegment is one immutable, fully written segment on disk.
type closedSegment struct {
	seq  uint64
	size int64
}

// Journal is an append-only write-ahead log. It is safe for concurrent
// use; appends from many ingest goroutines serialize on one mutex, with
// the encoding done into a reused buffer so the fsync=never append path
// is allocation-free at steady state.
type Journal struct {
	cfg Config

	mu     sync.Mutex
	f      SegmentFile
	seq    uint64 // active segment sequence
	size   int64  // active segment size, including header
	closed []closedSegment
	buf    []byte // reused record encode buffer
	dirty  bool   // unsynced bytes in the active segment
	// syncedThrough is the append count covered by the last successful
	// sync. Closed segments are always synced before close, so one
	// successful syncLocked makes every append so far durable.
	syncedThrough int64
	stats         Stats
	done   bool
	// failed poisons the journal: set when a segment write failed and a
	// fresh segment could not be opened, so the file offset may no longer
	// match size and further appends would land after garbage bytes.
	failed error
	// retainSeg is the retention floor: prune never deletes a segment
	// with seq >= retainSeg, so every record at or after the newest
	// checkpoint's position survives the MaxBytes cap. Unset (retainSet
	// false) means no checkpoint has been seen and prune is unrestricted.
	retainSeg uint64
	retainSet bool
	// scrubNext is the scrub cursor: the next sealed segment sequence
	// Scrub examines, so successive low-rate passes cycle the journal.
	scrubNext uint64
	// modelHash is stamped into every segment header (see SetModelHash).
	modelHash [modelHashSize]byte

	// gc is the group-commit ticket state (see waitDurable): durable is
	// the append count known to be on stable storage, syncing marks the
	// in-flight leader. Guarded by gc.mu, never held together with j.mu
	// — the leader drops gc.mu before taking j.mu to sync, so appends
	// keep flowing (and coalescing) while the fsync is in flight.
	gc struct {
		mu      sync.Mutex
		cond    *sync.Cond
		syncing bool
		durable int64
	}

	stopc chan struct{}
	wg    sync.WaitGroup
}

// Open creates or opens a journal directory and starts a fresh active
// segment after any existing ones. Existing segments are never appended
// to (their tails may be torn from a previous crash); they remain
// readable for Replay until retention deletes them.
func Open(cfg Config) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: empty journal directory")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 8 << 20
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.OpenSegmentFile == nil {
		cfg.OpenSegmentFile = func(name string, flag int, perm os.FileMode) (SegmentFile, error) {
			return os.OpenFile(name, flag, perm)
		}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", cfg.Dir, err)
	}
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{cfg: cfg, stopc: make(chan struct{})}
	j.gc.cond = sync.NewCond(&j.gc.mu)
	next := uint64(1)
	for _, s := range segs {
		j.closed = append(j.closed, s)
		if s.seq >= next {
			next = s.seq + 1
		}
	}
	// Seed the retention floor from the newest checkpoint so MaxBytes
	// pruning never deletes segments the next recovery still needs.
	if cp, err := LatestCheckpoint(cfg.Dir); err != nil {
		return nil, err
	} else if cp != nil {
		j.retainSeg, j.retainSet = cp.Pos.Seg, true
	}
	if err := j.openSegment(next); err != nil {
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		j.wg.Add(1)
		go j.syncLoop()
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.cfg.Dir }

// segmentPath names segment seq inside dir.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%08d.wal", seq))
}

// listSegments returns the existing segments in dir, oldest first.
func listSegments(dir string) ([]closedSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", dir, err)
	}
	var out []closedSegment
	for _, e := range entries {
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: stat %s: %w", e.Name(), err)
		}
		out = append(out, closedSegment{seq: seq, size: info.Size()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out, nil
}

// parseSegmentName extracts the sequence number from a segment file
// name, reporting whether the name is a segment at all.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".wal")
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// openSegment creates and headers a new active segment. Caller holds
// j.mu (or is the constructor).
func (j *Journal) openSegment(seq uint64) error {
	path := segmentPath(j.cfg.Dir, seq)
	f, err := j.cfg.OpenSegmentFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], segmentMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:headerPrefixSize], segmentVersion)
	copy(hdr[headerPrefixSize:], j.modelHash[:])
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: write segment header %s: %w", path, err)
	}
	j.f = f
	j.seq = seq
	j.size = headerSize
	j.dirty = true
	return nil
}

// ModelHash returns the model compatibility hash stamped into segment
// headers (all zero if never set).
func (j *Journal) ModelHash() [modelHashSize]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.modelHash
}

// SetModelHash changes the model compatibility hash stamped into
// segment headers — the serving layer calls it at startup and on every
// hot swap. Because one segment never mixes models, a change rotates to
// a fresh segment immediately; if the active segment is still empty
// (the startup case) its header is rewritten in place instead, avoiding
// a zero-hash segment littering every journal directory. A no-op when
// the hash is unchanged.
func (j *Journal) SetModelHash(h [modelHashSize]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if h == j.modelHash {
		return nil
	}
	j.modelHash = h
	if j.done || j.failed != nil {
		// No active segment to stamp; the next openSegment (Revive, or a
		// fresh Open) picks the hash up.
		return nil
	}
	if j.size == headerSize {
		// Empty active segment: replace it in place under the same
		// sequence number rather than burning a rotation.
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("wal: close empty segment %d: %w", j.seq, err)
		}
		path := segmentPath(j.cfg.Dir, j.seq)
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: remove empty segment %s: %w", path, err)
		}
		return j.openSegment(j.seq)
	}
	return j.rotateLocked()
}

// AppendBatch appends one validated ingest batch for vm and returns the
// position after the record. Depending on the fsync policy the record
// is durable on return (always), within FsyncEvery (interval), or at
// the kernel's leisure (never).
func (j *Journal) AppendBatch(vm string, snaps []metrics.Snapshot) (Position, error) {
	return j.append(func(buf []byte) ([]byte, error) {
		return appendBatchPayload(buf, vm, snaps)
	})
}

// AppendBatchDeferred is AppendBatch for callers that make several
// appends per acknowledgement: the record is written (and any write
// error surfaces immediately), but under group commit the durability
// wait is deferred — the returned token must be passed to WaitDurable
// before the batch is acknowledged. Tokens are monotone, so a caller
// appending many records waits once on the largest. A zero token needs
// no wait (the record is already as durable as the policy promises).
func (j *Journal) AppendBatchDeferred(vm string, snaps []metrics.Snapshot) (Position, int64, error) {
	j.mu.Lock()
	pos, target, grouped, err := j.appendLocked(func(buf []byte) ([]byte, error) {
		return appendBatchPayload(buf, vm, snaps)
	})
	j.mu.Unlock()
	if err != nil {
		return Position{}, 0, err
	}
	if !grouped {
		return pos, 0, nil
	}
	return pos, target, nil
}

// WaitDurable blocks until every record appended at or before token
// (from AppendBatchDeferred) is on stable storage. Zero tokens return
// immediately.
func (j *Journal) WaitDurable(token int64) error {
	if token == 0 {
		return nil
	}
	return j.waitDurable(token)
}

// AppendFinalize appends a finalize marker for vm: replay stops feeding
// the VM's session and finalizes it instead.
func (j *Journal) AppendFinalize(vm string) (Position, error) {
	return j.append(func(buf []byte) ([]byte, error) {
		return appendFinalizePayload(buf, vm)
	})
}

// append frames and writes one record payload produced by encode. With
// group commit on, the write happens under j.mu but the fsync wait
// happens outside it, so concurrent appenders stack their records
// behind one fsync instead of each paying their own.
func (j *Journal) append(encode func([]byte) ([]byte, error)) (Position, error) {
	j.mu.Lock()
	pos, target, grouped, err := j.appendLocked(encode)
	j.mu.Unlock()
	if err != nil || !grouped {
		return pos, err
	}
	if err := j.waitDurable(target); err != nil {
		return Position{}, err
	}
	return pos, nil
}

// appendLocked does the encode + write under j.mu. grouped reports
// that the record still needs a group-commit fsync covering append
// count target before it may be acknowledged. Caller holds j.mu.
func (j *Journal) appendLocked(encode func([]byte) ([]byte, error)) (pos Position, target int64, grouped bool, err error) {
	if j.done {
		return Position{}, 0, false, fmt.Errorf("wal: journal is closed")
	}
	if j.failed != nil {
		return Position{}, 0, false, j.failed
	}
	// Frame placeholder first so payload bytes land at their final
	// offset in the shared buffer and one Write emits the whole record.
	buf := append(j.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	buf, err = encode(buf)
	if err != nil {
		return Position{}, 0, false, err
	}
	payload := buf[frameSize:]
	if len(payload) > maxPayload {
		return Position{}, 0, false, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), maxPayload)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	j.buf = buf
	if _, err := j.f.Write(buf); err != nil {
		// A failed (possibly partial) write leaves the file offset ahead
		// of j.size — the segments are not O_APPEND — so continuing to
		// append here would land records after garbage bytes and replay
		// would stop at the corruption, losing acknowledged records.
		// Abandon the segment for a fresh one; if even that fails, poison
		// the journal so every later append fails fast instead of
		// corrupting the stream.
		if aerr := j.abandonSegmentLocked(); aerr != nil {
			j.failed = fmt.Errorf("wal: journal poisoned by failed append to segment %d: %w", j.seq, aerr)
			j.cfg.Logf("%v", j.failed)
		}
		return Position{}, 0, false, fmt.Errorf("wal: append to segment %d: %w", j.seq, err)
	}
	j.size += int64(len(buf))
	j.dirty = true
	j.stats.Appends++
	if j.cfg.Fsync == FsyncAlways {
		if j.cfg.GroupCommit {
			// The fsync is deferred to waitDurable, outside j.mu: the
			// record must not be acknowledged until the durable append
			// count reaches what it is now.
			grouped, target = true, j.stats.Appends
		} else if err := j.syncLocked(); err != nil {
			return Position{}, 0, false, err
		}
	}
	pos = Position{Seg: j.seq, Off: j.size}
	if j.size >= j.cfg.SegmentBytes {
		// Rotation syncs the outgoing segment before closing it, so a
		// grouped record that triggers rotation is already durable; the
		// later waitDurable no-ops via the dirty check.
		if err := j.rotateLocked(); err != nil {
			return Position{}, 0, false, err
		}
	}
	return pos, target, grouped, nil
}

// waitDurable blocks until the journal's durable append count covers
// target, electing the calling goroutine fsync leader if nobody is
// syncing: the leader optionally sleeps the commit window, captures
// the segment file and append count under j.mu, then fsyncs OUTSIDE
// both locks — so appends keep flowing into the segment while the disk
// works, stacking behind the next fsync instead of each paying their
// own. A follower whose leader failed self-elects and surfaces its own
// error, matching non-grouped FsyncAlways semantics.
func (j *Journal) waitDurable(target int64) error {
	gc := &j.gc
	gc.mu.Lock()
	for {
		if gc.durable >= target {
			gc.mu.Unlock()
			return nil
		}
		if !gc.syncing {
			break
		}
		gc.cond.Wait()
	}
	gc.syncing = true
	gc.mu.Unlock()

	if w := j.cfg.GroupCommitWindow; w > 0 {
		time.Sleep(w)
	}

	j.mu.Lock()
	var (
		synced int64
		seq    uint64
		f      SegmentFile
		err    error
	)
	switch {
	case j.done:
		err = fmt.Errorf("wal: journal is closed")
	case j.failed != nil:
		err = j.failed
	case !j.dirty:
		// Nothing unsynced anywhere (rotation syncs outgoing segments
		// before closing them), so every append so far is durable.
		synced = j.stats.Appends
		j.syncedThrough = synced
	default:
		synced, seq, f = j.stats.Appends, j.seq, j.f
	}
	j.mu.Unlock()

	if f != nil {
		serr := f.Sync()
		j.mu.Lock()
		switch {
		case serr == nil:
			j.stats.Syncs++
			j.stats.LastSync = j.cfg.Now()
			if synced > j.syncedThrough {
				j.syncedThrough = synced
			}
			// Appends that landed while the fsync was in flight are not
			// covered; the segment stays dirty for the next leader.
			if j.seq == seq && j.stats.Appends == synced {
				j.dirty = false
			}
		case j.syncedThrough >= synced:
			// The segment rotated away mid-fsync and its close raced our
			// Sync; the rotation's own sync already covered every record
			// in this group, so the error is moot.
		default:
			err = fmt.Errorf("wal: fsync segment %d: %w", seq, serr)
		}
		j.mu.Unlock()
	}

	gc.mu.Lock()
	gc.syncing = false
	if err == nil && synced > gc.durable {
		gc.durable = synced
	}
	gc.cond.Broadcast()
	gc.mu.Unlock()
	return err
}

// abandonSegmentLocked retires an active segment whose tail is suspect
// after a failed write: the valid prefix is synced and closed
// best-effort (its records up to j.size replay fine; the garbage tail
// is dropped like any torn tail), and a fresh segment takes over so
// later appends start at a known-good offset. Caller holds j.mu.
func (j *Journal) abandonSegmentLocked() error {
	if j.dirty {
		if err := j.f.Sync(); err != nil {
			j.cfg.Logf("wal: sync abandoned segment %d: %v", j.seq, err)
		} else {
			j.dirty = false
			j.stats.Syncs++
			j.stats.LastSync = j.cfg.Now()
		}
	}
	if err := j.f.Close(); err != nil {
		j.cfg.Logf("wal: close abandoned segment %d: %v", j.seq, err)
	}
	j.closed = append(j.closed, closedSegment{seq: j.seq, size: j.size})
	j.stats.Rotations++
	j.cfg.Logf("wal: abandoned segment %d after failed append (valid to %d bytes)", j.seq, j.size)
	return j.openSegment(j.seq + 1)
}

// Sync flushes the active segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return fmt.Errorf("wal: journal is closed")
	}
	if j.failed != nil {
		return j.failed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync segment %d: %w", j.seq, err)
	}
	j.dirty = false
	j.syncedThrough = j.stats.Appends
	j.stats.Syncs++
	j.stats.LastSync = j.cfg.Now()
	return nil
}

// Rotate closes the active segment and starts a new one, then enforces
// retention in the background.
func (j *Journal) Rotate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return fmt.Errorf("wal: journal is closed")
	}
	if j.failed != nil {
		return j.failed
	}
	return j.rotateLocked()
}

// Failed returns the poisoning error, if the journal is poisoned: a
// segment write failed and no fresh segment could be opened, so every
// append fails fast until Revive succeeds.
func (j *Journal) Failed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Revive attempts to clear a poisoned journal by opening a fresh
// active segment — the probe the daemon's degraded-durability mode
// runs to re-arm once a transient fault (ENOSPC, a flaky disk) heals.
// It is a no-op on a healthy journal and returns the open error while
// the fault persists, leaving the journal poisoned.
func (j *Journal) Revive() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return fmt.Errorf("wal: journal is closed")
	}
	if j.failed == nil {
		return nil
	}
	// The poisoned active segment was already retired by
	// abandonSegmentLocked; only a fresh segment is needed.
	if err := j.openSegment(j.seq + 1); err != nil {
		return fmt.Errorf("wal: revive: %w", err)
	}
	j.failed = nil
	j.cfg.Logf("wal: revived with fresh segment %d", j.seq)
	return nil
}

// SetRetainFloor raises the retention floor: segments with seq >= seg
// are never deleted by the MaxBytes cap. Callers advance it to the
// newest checkpoint's Position.Seg after every successful checkpoint,
// so retention can only discard segments whose records are already
// folded into a checkpoint. The floor is monotonic; a lower value is
// ignored.
func (j *Journal) SetRetainFloor(seg uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.retainSet || seg > j.retainSeg {
		j.retainSeg, j.retainSet = seg, true
	}
}

func (j *Journal) rotateLocked() error {
	// A rotation is the last write to the outgoing segment; sync it
	// regardless of policy so a closed segment is always fully durable.
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", j.seq, err)
	}
	j.closed = append(j.closed, closedSegment{seq: j.seq, size: j.size})
	j.stats.Rotations++
	if err := j.openSegment(j.seq + 1); err != nil {
		return err
	}
	if j.cfg.MaxBytes > 0 {
		// Prune off the append path; deletions only touch closed
		// segments, which no appender writes to.
		j.wg.Add(1)
		go func() {
			defer j.wg.Done()
			j.prune()
		}()
	}
	return nil
}

// prune deletes the oldest closed segments until their total size fits
// under MaxBytes, but never a segment at or above the retention floor:
// deleting a segment the newest checkpoint still points into would
// leave a silent gap in the stream and lose acknowledged records at
// the next recovery.
func (j *Journal) prune() {
	j.mu.Lock()
	defer j.mu.Unlock()
	var total int64
	for _, s := range j.closed {
		total += s.size
	}
	for len(j.closed) > 0 && total > j.cfg.MaxBytes {
		victim := j.closed[0]
		if j.retainSet && victim.seq >= j.retainSeg {
			j.cfg.Logf("wal: retention over cap by %d bytes but segment %d is needed by the newest checkpoint; not pruning",
				total-j.cfg.MaxBytes, victim.seq)
			return
		}
		path := segmentPath(j.cfg.Dir, victim.seq)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			j.cfg.Logf("wal: retention: remove %s: %v", path, err)
			return
		}
		j.cfg.Logf("wal: retention dropped segment %d (%d bytes)", victim.seq, victim.size)
		total -= victim.size
		j.closed = j.closed[1:]
		j.stats.TruncatedSegments++
	}
}

// syncLoop is the FsyncInterval background syncer.
func (j *Journal) syncLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stopc:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.done {
				if err := j.syncLocked(); err != nil {
					j.cfg.Logf("wal: interval sync: %v", err)
				}
			}
			j.mu.Unlock()
		}
	}
}

// Pos returns the position after the last appended record.
func (j *Journal) Pos() Position {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Position{Seg: j.seq, Off: j.size}
}

// Stats returns a snapshot of the journal's depth and activity.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.ActiveSeg = j.seq
	st.Segments = len(j.closed) + 1
	st.Bytes = j.size
	for _, s := range j.closed {
		st.Bytes += s.size
	}
	if j.done {
		st.Segments--
		st.Bytes -= j.size
	}
	return st
}

// Close syncs and closes the active segment and stops background
// loops. The journal cannot be used afterwards; a later Open on the
// same directory starts a new segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return nil
	}
	err := j.failed
	if err == nil {
		// A poisoned journal's active file was already retired by
		// abandonSegmentLocked; only a healthy one needs the final
		// sync-and-close.
		err = j.syncLocked()
		if cerr := j.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("wal: close segment %d: %w", j.seq, cerr)
		}
		j.closed = append(j.closed, closedSegment{seq: j.seq, size: j.size})
	}
	j.done = true
	close(j.stopc)
	j.mu.Unlock()
	j.wg.Wait()
	return err
}
