package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
)

// testSnaps builds n distinguishable snapshots for vm.
func testSnaps(vm string, n, dims int, base float64) []metrics.Snapshot {
	out := make([]metrics.Snapshot, n)
	for i := range out {
		vals := make([]float64, dims)
		for j := range vals {
			vals[j] = base + float64(i*dims+j)
		}
		out[i] = metrics.Snapshot{
			Time:   time.Duration(i) * 5 * time.Second,
			Node:   vm,
			Values: vals,
		}
	}
	return out
}

func openTestJournal(t *testing.T, cfg Config) *Journal {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestAppendReplayRoundTrip(t *testing.T) {
	j := openTestJournal(t, Config{Fsync: FsyncNever})
	want := map[string][]metrics.Snapshot{
		"vm-a": testSnaps("vm-a", 7, 4, 100),
		"vm-b": testSnaps("vm-b", 3, 4, 200),
	}
	if _, err := j.AppendBatch("vm-a", want["vm-a"][:5]); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch("vm-b", want["vm-b"]); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch("vm-a", want["vm-a"][5:]); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendFinalize("vm-b"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got := map[string][]metrics.Snapshot{}
	finalized := map[string]bool{}
	stats, err := Replay(j.Dir(), Position{}, func(pos Position, rec Record) error {
		switch rec.Type {
		case RecordBatch:
			got[rec.VM] = append(got[rec.VM], rec.Snaps...)
		case RecordFinalize:
			finalized[rec.VM] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Records != 4 || stats.Snapshots != 10 || stats.Truncated {
		t.Errorf("replay stats = %+v, want 4 records, 10 snapshots, not truncated", stats)
	}
	if !finalized["vm-b"] || finalized["vm-a"] {
		t.Errorf("finalized = %v, want only vm-b", finalized)
	}
	for vm, snaps := range want {
		if len(got[vm]) != len(snaps) {
			t.Fatalf("%s: replayed %d snapshots, want %d", vm, len(got[vm]), len(snaps))
		}
		for i := range snaps {
			g := got[vm][i]
			if g.Time != snaps[i].Time || g.Node != vm {
				t.Fatalf("%s snapshot %d = {%v %s}, want {%v %s}", vm, i, g.Time, g.Node, snaps[i].Time, vm)
			}
			for k, v := range snaps[i].Values {
				if g.Values[k] != v {
					t.Fatalf("%s snapshot %d value %d = %v, want %v", vm, i, k, g.Values[k], v)
				}
			}
		}
	}
}

func TestAppendValidation(t *testing.T) {
	j := openTestJournal(t, Config{Fsync: FsyncNever})
	if _, err := j.AppendBatch("", testSnaps("x", 1, 2, 0)); err == nil {
		t.Error("empty vm name: want error")
	}
	if _, err := j.AppendBatch("vm", nil); err == nil {
		t.Error("empty batch: want error")
	}
	mixed := append(testSnaps("vm", 1, 2, 0), testSnaps("vm", 1, 3, 0)...)
	if _, err := j.AppendBatch("vm", mixed); err == nil {
		t.Error("mixed dims: want error")
	}
	if _, err := j.AppendFinalize(""); err == nil {
		t.Error("empty finalize vm: want error")
	}
}

func TestReplayFromPosition(t *testing.T) {
	j := openTestJournal(t, Config{Fsync: FsyncNever})
	var mid Position
	for i := 0; i < 10; i++ {
		pos, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			mid = pos
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var records int
	stats, err := Replay(j.Dir(), mid, func(pos Position, rec Record) error {
		records++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != 4 || stats.Records != 4 {
		t.Errorf("replayed %d records from mid position, want 4 (stats %+v)", records, stats)
	}
	// Replaying from the journal's end position yields nothing.
	stats, err = Replay(j.Dir(), Position{Seg: j.seq, Off: j.size}, func(Position, Record) error {
		t.Error("unexpected record past end position")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 {
		t.Errorf("replay from end = %+v, want 0 records", stats)
	}
}

func TestSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{
		Dir:          dir,
		Fsync:        FsyncNever,
		SegmentBytes: 2 << 10, // rotate every ~2 KiB
		MaxBytes:     4 << 10, // keep ~4 KiB of closed segments
	})
	for i := 0; i < 100; i++ {
		if _, err := j.AppendBatch("vm", testSnaps("vm", 4, 8, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Rotations == 0 {
		t.Fatalf("stats = %+v, want rotations > 0", st)
	}
	if st.TruncatedSegments == 0 {
		t.Fatalf("stats = %+v, want retention-truncated segments > 0", st)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk int64
	for _, s := range segs {
		onDisk += s.size
	}
	// Retention bounds closed segments; the final (active-at-close)
	// segment rides on top.
	if max := int64(4<<10) + (2<<10)*2; onDisk > max {
		t.Errorf("journal holds %d bytes on disk, want <= %d", onDisk, max)
	}
	// The surviving tail must still replay cleanly from the earliest
	// remaining segment.
	stats, err := Replay(dir, Position{}, func(Position, Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated || stats.Records == 0 {
		t.Errorf("post-retention replay = %+v, want clean nonzero records", stats)
	}
}

// TestPruneRespectsRetainFloor caps the journal hard but pins the
// retention floor at the first segment: nothing may be pruned, because
// every segment is still needed by the (simulated) newest checkpoint.
func TestPruneRespectsRetainFloor(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{
		Dir:          dir,
		Fsync:        FsyncNever,
		SegmentBytes: 2 << 10,
		MaxBytes:     1, // everything over cap; only the floor protects segments
	})
	j.SetRetainFloor(1)
	for i := 0; i < 100; i++ {
		if _, err := j.AppendBatch("vm", testSnaps("vm", 4, 8, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Rotations == 0 || st.TruncatedSegments != 0 {
		t.Fatalf("stats = %+v, want rotations > 0 and no retention-truncated segments", st)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].seq != 1 {
		t.Fatalf("segments = %+v, want segment 1 retained", segs)
	}
	// Raising the floor releases the older segments on the next prune.
	j2 := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 2 << 10, MaxBytes: 1})
	j2.SetRetainFloor(j2.Pos().Seg)
	if err := j2.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := j2.Stats(); st.TruncatedSegments == 0 {
		t.Errorf("stats = %+v, want old segments pruned once the floor moved past them", st)
	}
}

// TestOpenSeedsRetainFloorFromCheckpoint: a journal reopened over a
// directory holding a checkpoint must not prune the segments the
// checkpoint still points into, even under a tight MaxBytes.
func TestOpenSeedsRetainFloorFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	pos, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveCheckpoint(dir, pos, time.Unix(1700000000, 0), "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 2 << 10, MaxBytes: 1})
	for i := 0; i < 100; i++ {
		if _, err := j2.AppendBatch("vm", testSnaps("vm", 4, 8, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].seq != pos.Seg {
		t.Fatalf("segments = %+v, want checkpointed segment %d retained", segs, pos.Seg)
	}
}

// TestAppendFailureAbandonsSegment simulates an I/O failure mid-append
// (the segment file vanishes out from under the journal): the journal
// must not keep appending at offsets past the failure — it abandons the
// segment for a fresh one, and both the pre-failure and post-failure
// records replay cleanly.
func TestAppendFailureAbandonsSegment(t *testing.T) {
	j := openTestJournal(t, Config{Fsync: FsyncNever})
	if _, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	firstSeg := j.Pos().Seg
	j.f.Close() // force the next write to fail
	if _, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, 1)); err == nil {
		t.Fatal("append to a closed file: want error")
	}
	pos, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, 2))
	if err != nil {
		t.Fatalf("append after abandoned segment: %v", err)
	}
	if pos.Seg <= firstSeg {
		t.Errorf("post-failure append landed in segment %d, want > %d", pos.Seg, firstSeg)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(j.Dir(), Position{}, func(Position, Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.Truncated || len(stats.MissingSegments) != 0 {
		t.Errorf("replay stats = %+v, want 2 clean records across the abandoned boundary", stats)
	}
}

func TestReopenStartsNewSegment(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	first := j.Pos().Seg
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if j2.Pos().Seg <= first {
		t.Errorf("reopened active segment %d, want > %d", j2.Pos().Seg, first)
	}
	if _, err := j2.AppendBatch("vm", testSnaps("vm", 1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(dir, Position{}, func(Position, Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Errorf("replay across reopen = %+v, want 2 records", stats)
	}
}

func TestFsyncPolicies(t *testing.T) {
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus): want error")
	}
	for _, spec := range []string{"always", "interval", "never"} {
		pol, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%s): %v", spec, err)
		}
		if pol.String() != spec {
			t.Errorf("Policy round trip %q -> %q", spec, pol.String())
		}
		j := openTestJournal(t, Config{Fsync: pol, FsyncEvery: 5 * time.Millisecond})
		if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 2, 0)); err != nil {
			t.Fatalf("append under %s: %v", spec, err)
		}
		switch pol {
		case FsyncAlways:
			if st := j.Stats(); st.Syncs == 0 {
				t.Errorf("fsync=always: no sync after append (stats %+v)", st)
			}
		case FsyncInterval:
			deadline := time.Now().Add(2 * time.Second)
			for j.Stats().Syncs == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if st := j.Stats(); st.Syncs == 0 {
				t.Errorf("fsync=interval: background syncer never ran (stats %+v)", st)
			}
		case FsyncNever:
			if st := j.Stats(); st.Syncs != 0 {
				t.Errorf("fsync=never: unexpected syncs (stats %+v)", st)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close under %s: %v", spec, err)
		}
	}
}

func TestStatsTrackDepth(t *testing.T) {
	j := openTestJournal(t, Config{Fsync: FsyncNever})
	st := j.Stats()
	if st.Segments != 1 || st.Bytes != headerSize {
		t.Errorf("fresh stats = %+v, want 1 segment of %d bytes", st, headerSize)
	}
	if _, err := j.AppendBatch("vm", testSnaps("vm", 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	st = j.Stats()
	if st.Appends != 1 || st.Bytes <= headerSize {
		t.Errorf("post-append stats = %+v", st)
	}
	// Bytes must agree with the on-disk reality.
	entries, err := os.ReadDir(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var disk int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		disk += info.Size()
	}
	if disk != st.Bytes {
		t.Errorf("stats.Bytes = %d, on disk %d", st.Bytes, disk)
	}
}

func TestClosedJournalRejectsUse(t *testing.T) {
	j := openTestJournal(t, Config{Fsync: FsyncNever})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 2, 0)); err == nil {
		t.Error("append after close: want error")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync after close: want error")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "journal-abc.wal", "journal-00000001.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	j := openTestJournal(t, Config{Dir: dir, Fsync: FsyncNever})
	if got := j.Pos().Seg; got != 1 {
		t.Errorf("active segment = %d, want 1 (foreign files ignored)", got)
	}
}
