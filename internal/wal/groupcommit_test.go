package wal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowSyncFile wraps a segment file so every fsync takes a fixed
// latency and is counted — the shape of a real disk, where coalescing
// is the whole point of group commit.
type slowSyncFile struct {
	SegmentFile
	delay    time.Duration
	syncs    *atomic.Int64
	failSync *atomic.Bool
}

func (f *slowSyncFile) Sync() error {
	if f.failSync != nil && f.failSync.Load() {
		return fmt.Errorf("injected sync failure")
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.syncs.Add(1)
	return f.SegmentFile.Sync()
}

func slowSyncOpener(delay time.Duration, syncs *atomic.Int64, failSync *atomic.Bool) func(string, int, os.FileMode) (SegmentFile, error) {
	return func(name string, flag int, perm os.FileMode) (SegmentFile, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return &slowSyncFile{SegmentFile: f, delay: delay, syncs: syncs, failSync: failSync}, nil
	}
}

// TestGroupCommitCoalesces drives many concurrent fsync=always
// appenders over a slow-syncing segment and asserts they shared
// fsyncs: with a 2ms fsync and 8 writers x 20 appends each, per-append
// syncing would need 160 fsyncs (~320ms of fsync time alone); group
// commit must land well under that.
func TestGroupCommitCoalesces(t *testing.T) {
	var syncs atomic.Int64
	j := openTestJournal(t, Config{
		Fsync:           FsyncAlways,
		GroupCommit:     true,
		OpenSegmentFile: slowSyncOpener(2*time.Millisecond, &syncs, nil),
	})
	const writers, each = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vm := fmt.Sprintf("vm-%d", w)
			snaps := testSnaps(vm, 2, 4, float64(100*w))
			for i := 0; i < each; i++ {
				if _, err := j.AppendBatch(vm, snaps); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("grouped append: %v", err)
	}
	st := j.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*each)
	}
	// Every record must be covered by a sync that happened at or after
	// its append; coalescing means far fewer syncs than appends. The
	// bound is loose (half) — in practice it is ~10x fewer — so the
	// test stays robust on slow machines.
	if st.Syncs >= st.Appends/2 {
		t.Errorf("syncs = %d for %d appends; group commit did not coalesce", st.Syncs, st.Appends)
	}
	if syncs.Load() == 0 {
		t.Error("segment file never fsynced")
	}
}

// TestGroupCommitDurableBeforeAck asserts the core contract: by the
// time AppendBatch returns, a sync has happened at or after the
// record's write — even for a lone appender with nobody to share with.
func TestGroupCommitDurableBeforeAck(t *testing.T) {
	var syncs atomic.Int64
	j := openTestJournal(t, Config{
		Fsync:           FsyncAlways,
		GroupCommit:     true,
		OpenSegmentFile: slowSyncOpener(0, &syncs, nil),
	})
	for i := 0; i < 5; i++ {
		before := syncs.Load()
		if _, err := j.AppendBatch("vm-solo", testSnaps("vm-solo", 1, 4, 1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if syncs.Load() == before {
			t.Fatalf("append %d acknowledged without an fsync", i)
		}
	}
}

// TestGroupCommitWindow exercises the optional leader wait: appends
// still complete and are durable, just on a wider coalescing window.
func TestGroupCommitWindow(t *testing.T) {
	var syncs atomic.Int64
	j := openTestJournal(t, Config{
		Fsync:             FsyncAlways,
		GroupCommit:       true,
		GroupCommitWindow: time.Millisecond,
		OpenSegmentFile:   slowSyncOpener(0, &syncs, nil),
	})
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vm := fmt.Sprintf("vm-%d", w)
			for i := 0; i < 5; i++ {
				if _, err := j.AppendBatch(vm, testSnaps(vm, 1, 4, 1)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if syncs.Load() == 0 {
		t.Fatal("no fsync happened")
	}
}

// TestGroupCommitLeaderError asserts a failing fsync surfaces to every
// waiting appender — a follower whose leader failed self-elects, tries
// its own sync, and gets its own error — matching plain FsyncAlways
// semantics where no record is acknowledged past a failed sync.
func TestGroupCommitLeaderError(t *testing.T) {
	var syncs atomic.Int64
	var fail atomic.Bool
	j := openTestJournal(t, Config{
		Fsync:           FsyncAlways,
		GroupCommit:     true,
		OpenSegmentFile: slowSyncOpener(time.Millisecond, &syncs, &fail),
	})
	// Prime a healthy append so the stream is established.
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 4, 1)); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	fail.Store(true)
	const writers = 4
	var wg sync.WaitGroup
	failures := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 4, 1)); err != nil {
				failures <- err
			}
		}()
	}
	wg.Wait()
	close(failures)
	n := 0
	for range failures {
		n++
	}
	if n != writers {
		t.Errorf("%d of %d appends failed; all must fail while fsync is failing", n, writers)
	}
	// The fault healing lets appends flow again.
	fail.Store(false)
	if _, err := j.AppendBatch("vm", testSnaps("vm", 1, 4, 1)); err != nil {
		t.Errorf("append after heal: %v", err)
	}
}

// TestGroupCommitReplayComplete round-trips a concurrent group-commit
// run through Replay: every acknowledged record must come back.
func TestGroupCommitReplayComplete(t *testing.T) {
	var syncs atomic.Int64
	dir := t.TempDir()
	j := openTestJournal(t, Config{
		Dir:             dir,
		Fsync:           FsyncAlways,
		GroupCommit:     true,
		SegmentBytes:    4 << 10, // force rotations mid-run
		OpenSegmentFile: slowSyncOpener(0, &syncs, nil),
	})
	const writers, each = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vm := fmt.Sprintf("vm-%d", w)
			for i := 0; i < each; i++ {
				if _, err := j.AppendBatch(vm, testSnaps(vm, 2, 8, float64(i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	perVM := map[string]int{}
	stats, err := Replay(dir, Position{}, func(pos Position, rec Record) error {
		if rec.Type == RecordBatch {
			perVM[rec.VM] += len(rec.Snaps)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Records != writers*each {
		t.Errorf("replayed %d records, want %d", stats.Records, writers*each)
	}
	for w := 0; w < writers; w++ {
		vm := fmt.Sprintf("vm-%d", w)
		if perVM[vm] != each*2 {
			t.Errorf("%s replayed %d snapshots, want %d", vm, perVM[vm], each*2)
		}
	}
}
