package stats

import (
	"math"
	"testing"
)

func TestWelfordStateRoundTrip(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3.5, -4, 10} {
		w.Add(x)
	}
	restored, err := WelfordFromState(w.State())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != w.Count() || restored.Mean() != w.Mean() || restored.Variance() != w.Variance() {
		t.Fatalf("restored = (%d %v %v), want (%d %v %v)",
			restored.Count(), restored.Mean(), restored.Variance(),
			w.Count(), w.Mean(), w.Variance())
	}
	// Continuing the stream on both must stay in lockstep.
	w.Add(7)
	restored.Add(7)
	if restored.Mean() != w.Mean() || restored.Variance() != w.Variance() {
		t.Errorf("post-restore divergence: (%v %v) vs (%v %v)",
			restored.Mean(), restored.Variance(), w.Mean(), w.Variance())
	}
}

func TestWelfordFromStateRejectsInvalid(t *testing.T) {
	cases := []WelfordState{
		{N: -1},
		{N: 2, Mean: math.NaN()},
		{N: 2, M2: math.Inf(1)},
		{N: 2, M2: -1},
	}
	for _, c := range cases {
		if _, err := WelfordFromState(c); err == nil {
			t.Errorf("WelfordFromState(%+v): want error", c)
		}
	}
}
