package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single value should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatalf("MinMax: %v", err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", min, max)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil): want error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101): want error")
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil): want error")
	}
	one, err := Percentile([]float64{42}, 75)
	if err != nil || one != 42 {
		t.Errorf("Percentile single = (%v,%v), want (42,nil)", one, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil): want error")
	}
}

func TestZScoreFitApply(t *testing.T) {
	z := FitZScore([]float64{1, 2, 3})
	if z.Mean != 2 {
		t.Errorf("Mean = %v, want 2", z.Mean)
	}
	norm := z.ApplyAll([]float64{1, 2, 3})
	if math.Abs(Mean(norm)) > 1e-12 {
		t.Errorf("normalized mean = %v, want 0", Mean(norm))
	}
	if math.Abs(StdDev(norm)-1) > 1e-12 {
		t.Errorf("normalized stddev = %v, want 1", StdDev(norm))
	}
}

func TestZScoreConstantGuard(t *testing.T) {
	z := FitZScore([]float64{5, 5, 5})
	if z.StdDev != 1 {
		t.Errorf("constant input StdDev = %v, want 1 (guard)", z.StdDev)
	}
	if got := z.Apply(5); got != 0 {
		t.Errorf("Apply(5) = %v, want 0", got)
	}
}

func TestMajorityVote(t *testing.T) {
	got, n, err := MajorityVote([]string{"cpu", "io", "cpu", "cpu", "net"})
	if err != nil {
		t.Fatalf("MajorityVote: %v", err)
	}
	if got != "cpu" || n != 3 {
		t.Errorf("MajorityVote = (%q,%d), want (cpu,3)", got, n)
	}
	if _, _, err := MajorityVote(nil); err == nil {
		t.Error("MajorityVote(nil): want error")
	}
}

func TestMajorityVoteTieDeterministic(t *testing.T) {
	got, _, err := MajorityVote([]string{"net", "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "cpu" {
		t.Errorf("tie broken to %q, want lexicographically smallest (cpu)", got)
	}
}

func TestComposition(t *testing.T) {
	c := Composition([]string{"cpu", "cpu", "io", "idle"})
	if math.Abs(c["cpu"]-0.5) > 1e-12 || math.Abs(c["io"]-0.25) > 1e-12 {
		t.Errorf("Composition = %v", c)
	}
	var total float64
	for _, v := range c {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("composition total = %v, want 1", total)
	}
	if len(Composition(nil)) != 0 {
		t.Error("Composition(nil) should be empty")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix([]string{"cpu", "io"})
	for _, pair := range [][2]string{{"cpu", "cpu"}, {"cpu", "io"}, {"io", "io"}, {"io", "io"}} {
		if err := cm.Add(pair[0], pair[1]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if cm.Total() != 4 {
		t.Errorf("Total = %d, want 4", cm.Total())
	}
	if cm.Count("cpu", "io") != 1 {
		t.Errorf("Count(cpu,io) = %d, want 1", cm.Count("cpu", "io"))
	}
	if got := cm.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if got := cm.Recall("cpu"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Recall(cpu) = %v, want 0.5", got)
	}
	if err := cm.Add("bogus", "cpu"); err == nil {
		t.Error("Add with unknown label: want error")
	}
	if err := cm.Add("cpu", "bogus"); err == nil {
		t.Error("Add with unknown prediction: want error")
	}
}

func TestConfusionMatrixEmpty(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a"})
	if cm.Accuracy() != 0 {
		t.Error("Accuracy of empty matrix should be 0")
	}
	if cm.Recall("a") != 0 {
		t.Error("Recall with no observations should be 0")
	}
	if cm.Recall("zzz") != 0 {
		t.Error("Recall of unknown label should be 0")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 3
		w.Add(xs[i])
	}
	if w.Count() != len(xs) {
		t.Errorf("Count = %d, want %d", w.Count(), len(xs))
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("Welford variance %v != batch variance %v", w.Variance(), Variance(xs))
	}
}

func TestWelfordZScoreGuard(t *testing.T) {
	var w Welford
	w.Add(4)
	w.Add(4)
	z := w.ZScore()
	if z.StdDev != 1 {
		t.Errorf("constant stream StdDev = %v, want guard 1", z.StdDev)
	}
}

// Property: variance is non-negative and invariant under shifting.
func TestVarianceShiftInvarianceProperty(t *testing.T) {
	f := func(raw [8]float64, shift float64) bool {
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e4)
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 0
		}
		shift = math.Mod(shift, 1e4)
		v1 := Variance(xs)
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + shift
		}
		v2 := Variance(shifted)
		return v1 >= 0 && math.Abs(v1-v2) <= 1e-6*(1+v1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: composition fractions always sum to 1 for non-empty input.
func TestCompositionSumsToOneProperty(t *testing.T) {
	f := func(choices []uint8) bool {
		if len(choices) == 0 {
			return true
		}
		names := []string{"cpu", "io", "net", "mem", "idle"}
		labels := make([]string, len(choices))
		for i, c := range choices {
			labels[i] = names[int(c)%len(names)]
		}
		var total float64
		for _, v := range Composition(labels) {
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrixPrecision(t *testing.T) {
	cm := NewConfusionMatrix([]string{"cpu", "io"})
	// Predictions of "io": 2 correct, 1 wrong (true cpu).
	_ = cm.Add("io", "io")
	_ = cm.Add("io", "io")
	_ = cm.Add("cpu", "io")
	_ = cm.Add("cpu", "cpu")
	if got := cm.Precision("io"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Precision(io) = %v, want 2/3", got)
	}
	if got := cm.Precision("cpu"); got != 1 {
		t.Errorf("Precision(cpu) = %v, want 1", got)
	}
	if cm.Precision("zzz") != 0 {
		t.Error("Precision of unknown label should be 0")
	}
	empty := NewConfusionMatrix([]string{"a"})
	if empty.Precision("a") != 0 {
		t.Error("Precision with no predictions should be 0")
	}
}
