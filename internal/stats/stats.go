// Package stats provides the small statistics toolkit used throughout
// the classifier: summary statistics, z-score normalization, percentile
// estimation, majority voting and confusion matrices. It complements
// internal/linalg with the scalar and labelled-data side of the paper's
// "statistical abstracts of the application behavior".
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no data.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. Fewer than
// two samples yield 0.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the descriptive statistics the application database
// stores alongside each historical run.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, max, err := MinMax(xs)
	if err != nil {
		return Summary{}, err
	}
	med, err := Percentile(xs, 50)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
		Median: med,
	}, nil
}

// ZScore holds the mean and standard deviation of one variable so test
// data can be normalized with the parameters learned from training data,
// exactly as the paper's preprocessor normalizes selected metrics to
// zero mean and unit variance.
type ZScore struct {
	Mean   float64
	StdDev float64
}

// FitZScore learns normalization parameters from xs. A constant variable
// gets StdDev 1 so that normalization maps it to a constant 0 instead of
// dividing by zero.
func FitZScore(xs []float64) ZScore {
	sd := StdDev(xs)
	if sd == 0 {
		sd = 1
	}
	return ZScore{Mean: Mean(xs), StdDev: sd}
}

// Apply normalizes a single value.
func (z ZScore) Apply(x float64) float64 {
	return (x - z.Mean) / z.StdDev
}

// ApplyAll normalizes a slice, returning a new slice.
func (z ZScore) ApplyAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = z.Apply(x)
	}
	return out
}

// MajorityVote returns the most frequent label and its count. Ties are
// broken by the lexicographically smallest label so results are
// deterministic (the paper uses an odd k precisely to avoid most ties).
func MajorityVote(labels []string) (string, int, error) {
	if len(labels) == 0 {
		return "", 0, ErrEmpty
	}
	counts := make(map[string]int, len(labels))
	for _, l := range labels {
		counts[l]++
	}
	best, bestCount := "", -1
	for l, c := range counts {
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	return best, bestCount, nil
}

// Composition returns the fraction of each label in labels, summing to 1.
func Composition(labels []string) map[string]float64 {
	out := make(map[string]float64)
	if len(labels) == 0 {
		return out
	}
	for _, l := range labels {
		out[l]++
	}
	n := float64(len(labels))
	for l := range out {
		out[l] /= n
	}
	return out
}

// ConfusionMatrix counts predicted-vs-true label pairs for classifier
// evaluation.
type ConfusionMatrix struct {
	labels []string
	index  map[string]int
	counts [][]int
	total  int
}

// NewConfusionMatrix creates a matrix over a fixed label set.
func NewConfusionMatrix(labels []string) *ConfusionMatrix {
	idx := make(map[string]int, len(labels))
	ls := append([]string(nil), labels...)
	for i, l := range ls {
		idx[l] = i
	}
	counts := make([][]int, len(ls))
	for i := range counts {
		counts[i] = make([]int, len(ls))
	}
	return &ConfusionMatrix{labels: ls, index: idx, counts: counts}
}

// Add records one observation with the given true and predicted labels.
// Unknown labels are rejected.
func (c *ConfusionMatrix) Add(trueLabel, predicted string) error {
	ti, ok := c.index[trueLabel]
	if !ok {
		return fmt.Errorf("stats: unknown true label %q", trueLabel)
	}
	pi, ok := c.index[predicted]
	if !ok {
		return fmt.Errorf("stats: unknown predicted label %q", predicted)
	}
	c.counts[ti][pi]++
	c.total++
	return nil
}

// Count returns the number of observations with the given labels.
func (c *ConfusionMatrix) Count(trueLabel, predicted string) int {
	ti, ok := c.index[trueLabel]
	if !ok {
		return 0
	}
	pi, ok := c.index[predicted]
	if !ok {
		return 0
	}
	return c.counts[ti][pi]
}

// Accuracy returns the fraction of observations on the diagonal, or 0
// when empty.
func (c *ConfusionMatrix) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	var correct int
	for i := range c.labels {
		correct += c.counts[i][i]
	}
	return float64(correct) / float64(c.total)
}

// Total returns the number of observations recorded.
func (c *ConfusionMatrix) Total() int { return c.total }

// Labels returns the label set in construction order.
func (c *ConfusionMatrix) Labels() []string {
	return append([]string(nil), c.labels...)
}

// Recall returns the per-class recall for the given true label (diagonal
// over row sum), or 0 when the class has no observations.
func (c *ConfusionMatrix) Recall(label string) float64 {
	ti, ok := c.index[label]
	if !ok {
		return 0
	}
	var row int
	for _, v := range c.counts[ti] {
		row += v
	}
	if row == 0 {
		return 0
	}
	return float64(c.counts[ti][ti]) / float64(row)
}

// Precision returns the per-class precision for the given predicted
// label (diagonal over column sum), or 0 when the label was never
// predicted.
func (c *ConfusionMatrix) Precision(label string) float64 {
	pi, ok := c.index[label]
	if !ok {
		return 0
	}
	var col int
	for ti := range c.labels {
		col += c.counts[ti][pi]
	}
	if col == 0 {
		return 0
	}
	return float64(c.counts[pi][pi]) / float64(col)
}

// Welford implements numerically stable streaming mean/variance, used by
// the online classifier extension to update normalization parameters
// incrementally.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations seen.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// ZScore snapshots the current normalization parameters, with the same
// constant-variable guard as FitZScore.
func (w *Welford) ZScore() ZScore {
	sd := w.StdDev()
	if sd == 0 {
		sd = 1
	}
	return ZScore{Mean: w.mean, StdDev: sd}
}

// WelfordState is the exported form of a Welford accumulator, used to
// persist streaming drift statistics across daemon restarts (session
// checkpoints serialize it as JSON).
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State exports the accumulator for serialization.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// WelfordFromState reconstructs an accumulator exported with State.
func WelfordFromState(s WelfordState) (Welford, error) {
	if s.N < 0 {
		return Welford{}, fmt.Errorf("stats: welford state has negative count %d", s.N)
	}
	if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) || math.IsNaN(s.M2) || math.IsInf(s.M2, 0) || s.M2 < 0 {
		return Welford{}, fmt.Errorf("stats: welford state has invalid moments (mean %v, m2 %v)", s.Mean, s.M2)
	}
	return Welford{n: s.N, mean: s.Mean, m2: s.M2}, nil
}
