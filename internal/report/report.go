// Package report assembles the full evaluation into a Markdown document
// of paper-vs-measured tables — a regenerable EXPERIMENTS file. Each
// section renders one experiment's structured result; Generate runs
// everything in order.
package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/appclass"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// paperTable3 holds the paper's Table 3 compositions for side-by-side
// rendering (fractions in percent; zero means the paper printed "–").
var paperTable3 = map[string][5]float64{
	// Columns follow appclass.All(): Idle, I/O, CPU, Network, Paging.
	"SPECseis96_A": {0, 0.26, 99.71, 0, 0.03},
	"SPECseis96_C": {0, 0, 100, 0, 0},
	"CH3D":         {0, 0, 100, 0, 0},
	"SimpleScalar": {0, 0, 100, 0, 0},
	"PostMark":     {0, 96.15, 0, 0, 3.85},
	"Bonnie":       {0, 86.17, 4.26, 0, 9.57},
	"SPECseis96_B": {0.21, 42.87, 50.39, 0, 6.52},
	"Stream":       {1.04, 79.17, 0, 0, 19.79},
	"PostMark_NFS": {0, 0, 0, 100, 0},
	"NetPIPE":      {4.05, 4.05, 0, 91.89, 0},
	"Autobench":    {0, 0, 0, 100, 0},
	"Sftp":         {0, 2.17, 0, 97.83, 0},
	"VMD":          {37.21, 40.70, 0, 22.09, 0},
	"XSpim":        {22.22, 77.78, 0, 0, 0},
}

// paperSamples holds the paper's Table 3 sample counts.
var paperSamples = map[string]int{
	"SPECseis96_A": 3434, "SPECseis96_C": 112, "CH3D": 45, "SimpleScalar": 62,
	"PostMark": 52, "Bonnie": 94, "SPECseis96_B": 5150, "Stream": 96,
	"PostMark_NFS": 77, "NetPIPE": 74, "Autobench": 172, "Sftp": 46,
	"VMD": 86, "XSpim": 9,
}

func pct(v float64) string {
	if v == 0 {
		return "–"
	}
	return fmt.Sprintf("%.2f%%", v)
}

// Table3 renders the composition comparison as Markdown.
func Table3(w io.Writer, rows []experiments.Table3Row) error {
	fmt.Fprintln(w, "## Table 3 — application class compositions (measured, with paper values in parentheses)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Application | Samples (paper) | Idle | I/O | CPU | Network | Paging | Dominant |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		paper := paperTable3[r.App]
		fmt.Fprintf(w, "| %s | %d (%d) |", r.App, r.Samples, paperSamples[r.App])
		for i, c := range appclass.All() {
			fmt.Fprintf(w, " %s (%s) |", pct(100*r.Composition[c]), pct(paper[i]))
		}
		mark := "✓"
		if r.Class != r.PaperDominant {
			mark = "✗"
		}
		fmt.Fprintf(w, " %s %s |\n", r.Class.Display(), mark)
	}
	fmt.Fprintln(w)
	return nil
}

// Figure4 renders the schedule table as Markdown.
func Figure4(w io.Writer, f *experiments.Figure4Result) error {
	fmt.Fprintln(w, "## Figure 4 — system throughput of the ten schedules")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| # | Schedule | Jobs/day | |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for i, r := range f.Results {
		note := ""
		if r == f.SPN {
			note = "← class-aware choice"
		}
		fmt.Fprintf(w, "| %d | `%s` | %.0f | %s |\n", i+1, r.Schedule, r.SystemThroughput, note)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- random-scheduler expectation: **%.0f** jobs/day\n", f.WeightedAverage)
	fmt.Fprintf(w, "- CPU-load-only scheduler expectation: **%.0f** jobs/day\n", f.CPULoadOnly)
	fmt.Fprintf(w, "- class-aware margin over random: **%+.2f%%** (paper: +22.11%%)\n", 100*f.MarginOverAverage)
	fmt.Fprintln(w)
	return nil
}

// Figure5 renders the per-application throughput comparison.
func Figure5(w io.Writer, f *experiments.Figure5Result) error {
	fmt.Fprintln(w, "## Figure 5 — per-application throughput")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Application | MIN | AVG | MAX | SPN | SPN vs AVG |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	names := map[sched.Kind]string{
		sched.KindS: "SPECseis96 (S)",
		sched.KindP: "PostMark (P)",
		sched.KindN: "NetPIPE (N)",
	}
	for _, k := range sched.Kinds() {
		st := f.Stats[k]
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %.0f | %.0f | %+.2f%% |\n",
			names[k], st.Min, st.Avg, st.Max, st.SPN, 100*(st.SPN/st.Avg-1))
	}
	fmt.Fprintln(w)
	return nil
}

// Table4 renders the concurrent-vs-sequential comparison.
func Table4(w io.Writer, r *sched.Table4Result) error {
	fmt.Fprintln(w, "## Table 4 — concurrent vs sequential execution")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Execution | CH3D | PostMark | Finish both |")
	fmt.Fprintln(w, "|---|---|---|---|")
	fmt.Fprintf(w, "| Concurrent | %.0f s | %.0f s | %.0f s |\n",
		r.ConcurrentCH3D.Seconds(), r.ConcurrentPostMark.Seconds(), r.ConcurrentMakespan.Seconds())
	fmt.Fprintf(w, "| Sequential | %.0f s | %.0f s | %.0f s |\n",
		r.SequentialCH3D.Seconds(), r.SequentialPostMark.Seconds(), r.SequentialTotal.Seconds())
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Concurrent sharing finishes both **%.1f%%** sooner (paper: 613 s vs 752 s).\n\n", 100*r.Speedup())
	return nil
}

// Cost renders the Section 5.3 measurement.
func Cost(w io.Writer, r *experiments.CostResult) error {
	fmt.Fprintln(w, "## Section 5.3 — classification cost")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Stage | Paper (8000 snapshots) | Measured |")
	fmt.Fprintln(w, "|---|---|---|")
	fmt.Fprintf(w, "| performance filter | 72 s | %v |\n", r.FilterTime.Round(time.Millisecond))
	fmt.Fprintf(w, "| train + PCA + classify | 50 s | %v |\n", r.ClassifyTime.Round(time.Millisecond))
	fmt.Fprintf(w, "| unit cost per sample | ~15 ms | %v |\n", r.UnitCostPerSample.Round(time.Microsecond))
	fmt.Fprintln(w)
	return nil
}

// Learning renders the two-wave learning experiment.
func Learning(w io.Writer, r *experiments.LearningResult) error {
	fmt.Fprintln(w, "## Learning over historical runs")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Wave | Class knowledge | Mean turnaround |")
	fmt.Fprintln(w, "|---|---|---|")
	fmt.Fprintf(w, "| 1 | none (profiled while running) | %v |\n", r.Wave1.Round(time.Second))
	fmt.Fprintf(w, "| 2 | learned from wave 1 | %v |\n", r.Wave2.Round(time.Second))
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Learning improved mean turnaround by **%.1f%%** (paper headline: 22.11%%).\n\n", 100*r.Improvement)
	return nil
}

// Generate runs the entire evaluation and writes the Markdown report.
func Generate(w io.Writer, seed int64) error {
	fmt.Fprintln(w, "# Evaluation report — generated by cmd/expreport")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Seed %d. Regenerate with `go run ./cmd/expreport -markdown <file>`.\n\n", seed)

	svc, err := experiments.NewTrainedService(seed)
	if err != nil {
		return err
	}
	rows, err := experiments.Table3(svc, seed)
	if err != nil {
		return err
	}
	if err := Table3(w, rows); err != nil {
		return err
	}

	f4, err := experiments.Figure4(seed)
	if err != nil {
		return err
	}
	if err := Figure4(w, f4); err != nil {
		return err
	}
	f5, err := experiments.Figure5(f4)
	if err != nil {
		return err
	}
	if err := Figure5(w, f5); err != nil {
		return err
	}

	t4, err := experiments.Table4(seed)
	if err != nil {
		return err
	}
	if err := Table4(w, t4); err != nil {
		return err
	}

	cost, err := experiments.ClassificationCost(seed)
	if err != nil {
		return err
	}
	if err := Cost(w, cost); err != nil {
		return err
	}

	learn, err := experiments.LearningWaves(seed)
	if err != nil {
		return err
	}
	return Learning(w, learn)
}
