package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/experiments"
	"repro/internal/sched"
)

func TestPaperTable3CoversEveryRow(t *testing.T) {
	// Every paper row must exist, and its composition must sum to ~100%.
	if len(paperTable3) != 14 {
		t.Fatalf("paper table has %d rows, want 14", len(paperTable3))
	}
	for app, comp := range paperTable3 {
		var sum float64
		for _, v := range comp {
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Errorf("paper row %s sums to %v", app, sum)
		}
		if _, ok := paperSamples[app]; !ok {
			t.Errorf("paper row %s missing sample count", app)
		}
	}
}

func TestTable3Markdown(t *testing.T) {
	rows := []experiments.Table3Row{
		{
			App: "PostMark", Samples: 48,
			Composition:   map[appclass.Class]float64{appclass.IO: 1},
			Class:         appclass.IO,
			PaperDominant: appclass.IO,
		},
		{
			App: "CH3D", Samples: 45,
			Composition:   map[appclass.Class]float64{appclass.Net: 1},
			Class:         appclass.Net,
			PaperDominant: appclass.CPU,
		},
	}
	var buf bytes.Buffer
	if err := Table3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| PostMark | 48 (52) |") {
		t.Errorf("missing row:\n%s", out)
	}
	if !strings.Contains(out, "I/O ✓") {
		t.Error("match marker missing")
	}
	if !strings.Contains(out, "Network ✗") {
		t.Error("mismatch marker missing")
	}
}

func TestSectionRenderers(t *testing.T) {
	var buf bytes.Buffer
	t4 := &sched.Table4Result{
		ConcurrentCH3D: 518 * time.Second, ConcurrentPostMark: 241 * time.Second,
		ConcurrentMakespan: 518 * time.Second,
		SequentialCH3D:     495 * time.Second, SequentialPostMark: 240 * time.Second,
		SequentialTotal: 735 * time.Second,
	}
	if err := Table4(&buf, t4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| Concurrent | 518 s | 241 s | 518 s |") {
		t.Errorf("table 4 markdown:\n%s", buf.String())
	}

	buf.Reset()
	cost := &experiments.CostResult{
		Samples: 8000, FilterTime: 71 * time.Millisecond,
		ClassifyTime: 966 * time.Millisecond, UnitCostPerSample: 130 * time.Microsecond,
	}
	if err := Cost(&buf, cost); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "~15 ms") {
		t.Error("cost section missing paper value")
	}

	buf.Reset()
	learn := &experiments.LearningResult{
		Wave1: 513 * time.Second, Wave2: 411 * time.Second, Improvement: 0.199,
		LearnedClasses: map[string]appclass.Class{"seis": appclass.CPU},
	}
	if err := Learning(&buf, learn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "19.9%") {
		t.Errorf("learning section:\n%s", buf.String())
	}
}

func TestGenerateFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	var buf bytes.Buffer
	if err := Generate(&buf, experiments.DefaultSeed); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Table 3", "## Figure 4", "## Figure 5", "## Table 4",
		"## Section 5.3", "## Learning over historical runs",
		"class-aware choice",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "✗") {
		t.Error("report contains a dominant-class mismatch")
	}
}
