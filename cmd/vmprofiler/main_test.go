package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestRunList(t *testing.T) {
	var out, status bytes.Buffer
	if err := run("", 1, "", true, &out, &status); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"PostMark", "SPECseis96_A", "training applications"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunProfileToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var out, status bytes.Buffer
	if err := run("XSpim", 1, path, false, &out, &status); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := metrics.ReadCSV(f)
	if err != nil {
		t.Fatalf("output not a valid trace CSV: %v", err)
	}
	if tr.Len() == 0 || tr.Schema().Len() != 33 {
		t.Errorf("trace = %d snapshots x %d metrics", tr.Len(), tr.Schema().Len())
	}
	if !strings.Contains(status.String(), "profiled XSpim") {
		t.Errorf("status = %q", status.String())
	}
}

func TestRunProfileToStdout(t *testing.T) {
	var out, status bytes.Buffer
	if err := run("XSpim", 1, "", false, &out, &status); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := metrics.ReadCSV(&out); err != nil {
		t.Errorf("stdout not a valid trace CSV: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out, status bytes.Buffer
	if err := run("", 1, "", false, &out, &status); err == nil {
		t.Error("missing -app: want error")
	}
	if err := run("NoSuchApp", 1, "", false, &out, &status); err == nil {
		t.Error("unknown app: want error")
	}
	if err := run("XSpim", 1, "/nonexistent-dir/x.csv", false, &out, &status); err == nil {
		t.Error("unwritable output: want error")
	}
}
