// Command vmprofiler runs one registry application inside the simulated
// VM testbed, collects its performance trace through the Ganglia bus
// and the performance profiler, and writes the trace as CSV — the
// "performance profiler" half of the paper's Figure 1.
//
// Usage:
//
//	vmprofiler -app PostMark -seed 7 -o postmark.csv
//	vmprofiler -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	var (
		app  = flag.String("app", "", "registry application to profile (see -list)")
		seed = flag.Int64("seed", 1, "simulation seed")
		out  = flag.String("o", "", "output CSV path (default stdout)")
		list = flag.Bool("list", false, "list registry applications and exit")
	)
	flag.Parse()

	if err := run(*app, *seed, *out, *list, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "vmprofiler: %v\n", err)
		os.Exit(1)
	}
}

func run(app string, seed int64, out string, list bool, stdout, status io.Writer) error {
	if list {
		fmt.Fprintln(stdout, "training applications:")
		for _, e := range workload.TrainingSet() {
			fmt.Fprintf(stdout, "  %-18s %s\n", e.Name, e.Description)
		}
		fmt.Fprintln(stdout, "test applications:")
		for _, e := range workload.TestSet() {
			fmt.Fprintf(stdout, "  %-18s %s\n", e.Name, e.Description)
		}
		return nil
	}
	if app == "" {
		return fmt.Errorf("-app is required (use -list to see options)")
	}
	entry, err := workload.Find(app)
	if err != nil {
		return err
	}
	res, err := testbed.ProfileEntry(entry, seed)
	if err != nil {
		return err
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := res.Trace.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(status, "profiled %s: %d snapshots over %v (%d announcements in the pool)\n",
		entry.Name, res.Trace.Len(), res.Elapsed, res.PoolAnnouncements)
	return nil
}
