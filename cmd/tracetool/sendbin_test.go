package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/server"
)

// startDaemon boots an appclassd HTTP server on a loopback listener,
// serving the package's trained model.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	f, err := os.Open(trainedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cl, err := classify.Load(f)
	if err != nil {
		t.Fatalf("load model: %v", err)
	}
	srv, err := server.New(server.Config{Classifier: cl})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts
}

func TestSendbinReplaysTrace(t *testing.T) {
	ts := startDaemon(t)
	path := writeProfiledTrace(t, "PostMark")
	var out bytes.Buffer
	err := run("sendbin", []string{"-addr", ts.URL, "-vm", "replay-1", "-batch", "16", path}, &out)
	if err != nil {
		t.Fatalf("sendbin: %v", err)
	}
	got := out.String()
	for _, want := range []string{"stream: ", "model: ", `as "replay-1"`, "class", "snapshots", "io"} {
		if !strings.Contains(got, want) {
			t.Errorf("sendbin output missing %q:\n%s", want, got)
		}
	}
}

func TestSendbinDefaultsToTraceNode(t *testing.T) {
	ts := startDaemon(t)
	path := writeProfiledTrace(t, "PostMark")
	var out bytes.Buffer
	if err := run("sendbin", []string{"-addr", ts.URL, path}, &out); err != nil {
		t.Fatalf("sendbin: %v", err)
	}
	if !strings.Contains(out.String(), `as "`) {
		t.Errorf("sendbin should report the VM it replayed as:\n%s", out.String())
	}
}

func TestSendbinErrors(t *testing.T) {
	ts := startDaemon(t)
	path := writeProfiledTrace(t, "PostMark")
	if err := run("sendbin", []string{"-addr", ts.URL, "-batch", "0", path}, &bytes.Buffer{}); err == nil {
		t.Error("sendbin with -batch 0 should fail")
	}
	if err := run("sendbin", []string{"-addr", ts.URL, "nonexistent.csv"}, &bytes.Buffer{}); err == nil {
		t.Error("sendbin on a missing trace should fail")
	}
	empty := writeTestTrace(t, 0)
	if err := run("sendbin", []string{"-addr", ts.URL, empty}, &bytes.Buffer{}); err == nil {
		t.Error("sendbin on an empty trace should fail")
	}
	// A trace whose schema does not cover the daemon's is rejected at
	// handshake time.
	mismatched := writeTestTrace(t, 4)
	if err := run("sendbin", []string{"-addr", ts.URL, mismatched}, &bytes.Buffer{}); err == nil {
		t.Error("sendbin with a mismatched schema should fail")
	}
}
