// Command tracetool inspects and transforms the trace CSVs produced by
// vmprofiler: print summary information, per-metric statistics,
// downsample, or project onto a metric subset (e.g. the Table-1 expert
// metrics).
//
// Usage:
//
//	tracetool info  run.csv
//	tracetool stats run.csv
//	tracetool downsample -factor 2 run.csv > half.csv
//	tracetool project -metrics cpu_user,io_bi run.csv > small.csv
//	tracetool expert run.csv > expert.csv
//	tracetool phases -model model.json run.csv
//	tracetool sendbin -addr http://localhost:8080 run.csv
//	tracetool journal verify /var/lib/appclassd/journal
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/phase"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	if err := run(cmd, args, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: tracetool <command> [flags] <trace.csv>
commands:
  info        print trace dimensions and time span
  stats       print per-metric summary statistics
  downsample  keep every N-th snapshot (-factor N)
  project     keep selected metrics (-metrics a,b,c)
  expert      keep the Table-1 expert metrics
  phases      segment a trace into execution phases and fingerprint it
              (-model model.json, or -seed N to train on the testbed)
  sendbin     replay a trace into a live appclassd over the binary
              protocol (-addr URL, -vm name, -batch N)
  journal     inspect an appclassd write-ahead journal:
              journal dump <dir>      print records and checkpoint
              journal verify <dir>    check segment integrity (exit 1 if torn)
              journal truncate <dir>  cut torn segments at the last valid record
  scrub       verify every journal segment frame-by-frame and report (or,
              with -repair, fix) latent corruption (scrub [-repair] <dir>)`)
}

func run(cmd string, args []string, stdout io.Writer) error {
	switch cmd {
	case "info":
		return withTrace(args, func(tr *metrics.Trace) error { return info(stdout, tr) })
	case "stats":
		return withTrace(args, func(tr *metrics.Trace) error { return statsCmd(stdout, tr) })
	case "downsample":
		fs := flag.NewFlagSet("downsample", flag.ContinueOnError)
		factor := fs.Int("factor", 2, "keep every N-th snapshot")
		if err := fs.Parse(args); err != nil {
			return err
		}
		return withTrace(fs.Args(), func(tr *metrics.Trace) error {
			out, err := downsample(tr, *factor)
			if err != nil {
				return err
			}
			return out.WriteCSV(stdout)
		})
	case "project":
		fs := flag.NewFlagSet("project", flag.ContinueOnError)
		names := fs.String("metrics", "", "comma-separated metric names to keep")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *names == "" {
			return fmt.Errorf("project: -metrics is required")
		}
		return withTrace(fs.Args(), func(tr *metrics.Trace) error {
			out, err := tr.Project(strings.Split(*names, ","))
			if err != nil {
				return err
			}
			return out.WriteCSV(stdout)
		})
	case "expert":
		return withTrace(args, func(tr *metrics.Trace) error {
			out, err := tr.Project(metrics.ExpertNames())
			if err != nil {
				return err
			}
			return out.WriteCSV(stdout)
		})
	case "phases":
		fs := flag.NewFlagSet("phases", flag.ContinueOnError)
		model := fs.String("model", "", "load a trained classifier from this JSON file")
		seed := fs.Int64("seed", 1, "training seed when no -model is given")
		window := fs.Int("window", 0, "segmentation half-window in snapshots (default 8)")
		minPhase := fs.Int("min-phase", 0, "minimum phase length in snapshots (default 5)")
		threshold := fs.Float64("threshold", 0, "phase boundary distance threshold (default 1.0)")
		slack := fs.Float64("unknown-slack", 0, "open-set threshold slack (default 3.0, negative disables)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		return withTrace(fs.Args(), func(tr *metrics.Trace) error {
			cfg := phase.Config{Window: *window, MinLen: *minPhase, Threshold: *threshold}
			return phasesCmd(stdout, tr, *model, *seed, cfg, *slack)
		})
	case "sendbin":
		fs := flag.NewFlagSet("sendbin", flag.ContinueOnError)
		addr := fs.String("addr", "http://localhost:8080", "appclassd base URL")
		vm := fs.String("vm", "", "VM name to report (default: the trace's node)")
		batch := fs.Int("batch", 64, "snapshots per batch frame")
		if err := fs.Parse(args); err != nil {
			return err
		}
		return withTrace(fs.Args(), func(tr *metrics.Trace) error {
			return sendbinCmd(stdout, tr, *addr, *vm, *batch)
		})
	case "journal":
		return journalCmd(args, stdout)
	case "scrub":
		return scrubCmd(args, stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: tracetool help)", cmd)
	}
}

func withTrace(args []string, fn func(*metrics.Trace) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one trace file, got %v", args)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := metrics.ReadCSV(f)
	if err != nil {
		return fmt.Errorf("read %s: %w", args[0], err)
	}
	return fn(tr)
}

func info(w io.Writer, tr *metrics.Trace) error {
	var span time.Duration
	if tr.Len() > 0 {
		span = tr.Duration()
	}
	_, err := fmt.Fprintf(w, "node: %s\nsnapshots: %d\nmetrics: %d\nspan: %v\n",
		tr.Node(), tr.Len(), tr.Schema().Len(), span)
	return err
}

func statsCmd(w io.Writer, tr *metrics.Trace) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tmean\tstddev\tmin\tmax\tmedian")
	for _, name := range tr.Schema().Names() {
		col, err := tr.Column(name)
		if err != nil {
			return err
		}
		s, err := stats.Summarize(col)
		if err != nil {
			return fmt.Errorf("metric %s: %w", name, err)
		}
		fmt.Fprintf(tw, "%s\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\n",
			name, s.Mean, s.StdDev, s.Min, s.Max, s.Median)
	}
	return tw.Flush()
}

// phasesCmd replays a trace through an online classifier with phase
// segmentation (and, unless disabled, the open-set test) attached, then
// prints the detected phase table, the session verdict, and the run's
// canonical fingerprint.
func phasesCmd(w io.Writer, tr *metrics.Trace, model string, seed int64, cfg phase.Config, slack float64) error {
	if tr.Len() == 0 {
		return fmt.Errorf("phases: trace is empty")
	}
	var cl *classify.Classifier
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			return err
		}
		cl, err = classify.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("phases: load %s: %w", model, err)
		}
	} else {
		svc, err := core.NewService(core.Options{Seed: seed})
		if err != nil {
			return fmt.Errorf("phases: train: %w", err)
		}
		cl = svc.Classifier()
	}
	online, err := classify.NewOnline(cl, tr.Schema())
	if err != nil {
		return fmt.Errorf("phases: %w", err)
	}
	online.EnableSegmentation(cfg)
	if slack >= 0 {
		oset, err := cl.CalibrateOpenSet(classify.OpenSetConfig{Slack: slack})
		if err != nil {
			return fmt.Errorf("phases: calibrate open-set: %w", err)
		}
		online.EnableOpenSet(oset)
	}
	for i := 0; i < tr.Len(); i++ {
		if _, err := online.Observe(tr.At(i)); err != nil {
			return fmt.Errorf("phases: snapshot %d: %w", i, err)
		}
	}
	phases := online.Phases()
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tclass\tstart\tend\tsnapshots\tduration")
	for i, p := range phases {
		marker := ""
		if p.Open {
			marker = " (open)"
		}
		fmt.Fprintf(tw, "%d%s\t%s\t%v\t%v\t%d\t%v\n",
			i, marker, p.Class, p.Start, p.End, p.Snapshots, p.Duration())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	verdict := online.Verdict()
	if verdict == appclass.Unknown {
		fmt.Fprintf(w, "verdict: %s (%.0f%% of snapshots outside trained classes)\n",
			verdict, 100*online.UnknownFraction())
	} else {
		fmt.Fprintf(w, "verdict: %s\n", verdict)
	}
	if fp := phase.NewFingerprint(phases); !fp.Empty() {
		fmt.Fprintf(w, "fingerprint: %s\n", fp)
	}
	return nil
}

func downsample(tr *metrics.Trace, factor int) (*metrics.Trace, error) {
	if factor < 1 {
		return nil, fmt.Errorf("downsample factor must be >= 1, got %d", factor)
	}
	out := metrics.NewTrace(tr.Schema(), tr.Node())
	for i := 0; i < tr.Len(); i += factor {
		if err := out.Append(tr.At(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
