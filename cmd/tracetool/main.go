// Command tracetool inspects and transforms the trace CSVs produced by
// vmprofiler: print summary information, per-metric statistics,
// downsample, or project onto a metric subset (e.g. the Table-1 expert
// metrics).
//
// Usage:
//
//	tracetool info  run.csv
//	tracetool stats run.csv
//	tracetool downsample -factor 2 run.csv > half.csv
//	tracetool project -metrics cpu_user,io_bi run.csv > small.csv
//	tracetool expert run.csv > expert.csv
//	tracetool journal verify /var/lib/appclassd/journal
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	if err := run(cmd, args, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: tracetool <command> [flags] <trace.csv>
commands:
  info        print trace dimensions and time span
  stats       print per-metric summary statistics
  downsample  keep every N-th snapshot (-factor N)
  project     keep selected metrics (-metrics a,b,c)
  expert      keep the Table-1 expert metrics
  journal     inspect an appclassd write-ahead journal:
              journal dump <dir>      print records and checkpoint
              journal verify <dir>    check segment integrity (exit 1 if torn)
              journal truncate <dir>  cut torn segments at the last valid record`)
}

func run(cmd string, args []string, stdout io.Writer) error {
	switch cmd {
	case "info":
		return withTrace(args, func(tr *metrics.Trace) error { return info(stdout, tr) })
	case "stats":
		return withTrace(args, func(tr *metrics.Trace) error { return statsCmd(stdout, tr) })
	case "downsample":
		fs := flag.NewFlagSet("downsample", flag.ContinueOnError)
		factor := fs.Int("factor", 2, "keep every N-th snapshot")
		if err := fs.Parse(args); err != nil {
			return err
		}
		return withTrace(fs.Args(), func(tr *metrics.Trace) error {
			out, err := downsample(tr, *factor)
			if err != nil {
				return err
			}
			return out.WriteCSV(stdout)
		})
	case "project":
		fs := flag.NewFlagSet("project", flag.ContinueOnError)
		names := fs.String("metrics", "", "comma-separated metric names to keep")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *names == "" {
			return fmt.Errorf("project: -metrics is required")
		}
		return withTrace(fs.Args(), func(tr *metrics.Trace) error {
			out, err := tr.Project(strings.Split(*names, ","))
			if err != nil {
				return err
			}
			return out.WriteCSV(stdout)
		})
	case "expert":
		return withTrace(args, func(tr *metrics.Trace) error {
			out, err := tr.Project(metrics.ExpertNames())
			if err != nil {
				return err
			}
			return out.WriteCSV(stdout)
		})
	case "journal":
		return journalCmd(args, stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: tracetool help)", cmd)
	}
}

func withTrace(args []string, fn func(*metrics.Trace) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one trace file, got %v", args)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := metrics.ReadCSV(f)
	if err != nil {
		return fmt.Errorf("read %s: %w", args[0], err)
	}
	return fn(tr)
}

func info(w io.Writer, tr *metrics.Trace) error {
	var span time.Duration
	if tr.Len() > 0 {
		span = tr.Duration()
	}
	_, err := fmt.Fprintf(w, "node: %s\nsnapshots: %d\nmetrics: %d\nspan: %v\n",
		tr.Node(), tr.Len(), tr.Schema().Len(), span)
	return err
}

func statsCmd(w io.Writer, tr *metrics.Trace) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tmean\tstddev\tmin\tmax\tmedian")
	for _, name := range tr.Schema().Names() {
		col, err := tr.Column(name)
		if err != nil {
			return err
		}
		s, err := stats.Summarize(col)
		if err != nil {
			return fmt.Errorf("metric %s: %w", name, err)
		}
		fmt.Fprintf(tw, "%s\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\n",
			name, s.Mean, s.StdDev, s.Min, s.Max, s.Median)
	}
	return tw.Flush()
}

func downsample(tr *metrics.Trace, factor int) (*metrics.Trace, error) {
	if factor < 1 {
		return nil, fmt.Errorf("downsample factor must be >= 1, got %d", factor)
	}
	out := metrics.NewTrace(tr.Schema(), tr.Node())
	for i := 0; i < tr.Len(); i += factor {
		if err := out.Append(tr.At(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
