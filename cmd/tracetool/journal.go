package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/wal"
)

// journalCmd implements "tracetool journal <dump|verify|truncate> <dir>"
// — offline inspection and repair of an appclassd write-ahead journal
// directory.
func journalCmd(args []string, stdout io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("journal: want <dump|verify|truncate> <dir>")
	}
	sub, dir := args[0], args[1]
	switch sub {
	case "dump":
		return journalDump(stdout, dir)
	case "verify":
		return journalVerify(stdout, dir)
	case "truncate":
		return journalTruncate(stdout, dir)
	}
	return fmt.Errorf("journal: unknown subcommand %q (want dump, verify, or truncate)", sub)
}

// journalDump prints every replayable record, then the replay summary
// and the latest checkpoint, if any.
func journalDump(w io.Writer, dir string) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seg\toff\ttype\tvm\tsnaps\tspan")
	st, err := wal.Replay(dir, wal.Position{}, func(pos wal.Position, rec wal.Record) error {
		switch rec.Type {
		case wal.RecordBatch:
			span := "-"
			if n := len(rec.Snaps); n > 0 {
				span = fmt.Sprintf("%v..%v", rec.Snaps[0].Time, rec.Snaps[n-1].Time)
			}
			fmt.Fprintf(tw, "%d\t%d\tbatch\t%s\t%d\t%s\n", pos.Seg, pos.Off, rec.VM, len(rec.Snaps), span)
		case wal.RecordFinalize:
			fmt.Fprintf(tw, "%d\t%d\tfinalize\t%s\t-\t-\n", pos.Seg, pos.Off, rec.VM)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "records: %d (snapshots: %d)\n", st.Records, st.Snapshots)
	if st.Truncated {
		fmt.Fprintf(w, "TORN tail at seg %d off %d (run: tracetool journal truncate %s)\n",
			st.TruncatedAt.Seg, st.TruncatedAt.Off, dir)
	}
	cp, err := wal.LatestCheckpoint(dir)
	if err != nil {
		return err
	}
	if cp != nil {
		var payload struct {
			Sessions []struct {
				VM string `json:"vm"`
			} `json:"sessions"`
		}
		sessions := "?"
		if json.Unmarshal(cp.Payload, &payload) == nil {
			sessions = fmt.Sprintf("%d", len(payload.Sessions))
		}
		fmt.Fprintf(w, "checkpoint %d: %s session(s), covers seg %d off %d, taken %s\n",
			cp.Seq, sessions, cp.Pos.Seg, cp.Pos.Off, cp.TakenAt().UTC().Format(time.RFC3339))
	} else {
		fmt.Fprintln(w, "no checkpoint")
	}
	return nil
}

// journalVerify scans every segment and reports its health; it fails
// (exit 1) when any segment is torn, so scripts can gate on it.
func journalVerify(w io.Writer, dir string) error {
	infos, err := wal.VerifyDir(dir)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "segment\trecords\tbytes\tvalid\tstatus")
	torn := 0
	for _, info := range infos {
		status := "ok"
		if info.Torn {
			status = "TORN: " + info.TornReason
			torn++
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\n", info.Seq, info.Records, info.Size, info.ValidBytes, status)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if torn > 0 {
		return fmt.Errorf("journal: %d torn segment(s) in %s (repair: tracetool journal truncate %s)", torn, dir, dir)
	}
	fmt.Fprintf(w, "%d segment(s) clean\n", len(infos))
	return nil
}

// journalTruncate repairs torn segments in place, cutting each at its
// last valid record.
func journalTruncate(w io.Writer, dir string) error {
	fixed, err := wal.TruncateAtCorruption(dir)
	if err != nil {
		return err
	}
	if len(fixed) == 0 {
		fmt.Fprintln(w, "nothing to repair")
		return nil
	}
	for _, info := range fixed {
		fmt.Fprintf(w, "segment %d truncated to %d bytes (%d record(s) kept): %s\n",
			info.Seq, info.ValidBytes, info.Records, info.TornReason)
	}
	return nil
}

// scrubCmd implements "tracetool scrub [-repair] <dir>": verify every
// journal segment frame-by-frame against its CRC and — with -repair —
// rewrite damaged segments without their bad frames, quarantining each
// original as <segment>.corrupt. Without -repair it only reports, so a
// cron job can alarm before anything is rewritten. Exits non-zero when
// damage is found and not repaired.
func scrubCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	repair := fs.Bool("repair", false, "rewrite damaged segments without their bad frames (default: report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scrub: want exactly one journal directory, got %v", fs.Args())
	}
	dir := fs.Arg(0)
	reports, err := wal.ScrubDir(dir, *repair)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "segment\trecords\tbad\tstatus")
	unrepaired := 0
	for _, rep := range reports {
		status := "ok"
		switch {
		case rep.Repaired:
			status = fmt.Sprintf("repaired (quarantined %s)", rep.Quarantined)
		case rep.SkipReason != "":
			status = "damaged, not repaired: " + rep.SkipReason
			unrepaired++
		case rep.TornTail:
			status = "torn tail: " + rep.TornReason
			unrepaired++
		case rep.BadFrames > 0:
			status = "damaged (re-run with -repair)"
			unrepaired++
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\n", rep.Seq, rep.Records, rep.BadFrames, status)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if unrepaired > 0 {
		return fmt.Errorf("scrub: %d segment(s) still damaged in %s", unrepaired, dir)
	}
	return nil
}
