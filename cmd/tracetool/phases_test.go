package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/workload"
)

var (
	modelOnce sync.Once
	modelPath string
	modelErr  error
)

// trainedModel trains the classifier once per test binary and saves it
// to a JSON model file, so every phases invocation can load it with
// -model instead of re-training.
func trainedModel(t *testing.T) string {
	t.Helper()
	modelOnce.Do(func() {
		svc, err := core.NewService(core.Options{Seed: 1})
		if err != nil {
			modelErr = err
			return
		}
		dir, err := os.MkdirTemp("", "tracetool-model")
		if err != nil {
			modelErr = err
			return
		}
		modelPath = filepath.Join(dir, "model.json")
		f, err := os.Create(modelPath)
		if err != nil {
			modelErr = err
			return
		}
		defer f.Close()
		modelErr = svc.Classifier().Save(f)
	})
	if modelErr != nil {
		t.Fatalf("train model: %v", modelErr)
	}
	return modelPath
}

// writeProfiledTrace profiles a registry entry on the simulated testbed
// and writes its trace CSV to a temp file.
func writeProfiledTrace(t *testing.T, app string) string {
	t.Helper()
	entry, err := workload.Find(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testbed.ProfileEntry(entry, 7)
	if err != nil {
		t.Fatalf("profile %s: %v", app, err)
	}
	path := filepath.Join(t.TempDir(), app+".csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPhasesLabelsProfiledTrace(t *testing.T) {
	model := trainedModel(t)
	path := writeProfiledTrace(t, "PostMark")
	var out bytes.Buffer
	if err := run("phases", []string{"-model", model, path}, &out); err != nil {
		t.Fatalf("phases: %v", err)
	}
	got := out.String()
	for _, want := range []string{"class", "snapshots", "verdict: io", "fingerprint: io"} {
		if !strings.Contains(got, want) {
			t.Errorf("phases output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "verdict: unknown") {
		t.Errorf("PostMark should not verdict unknown:\n%s", got)
	}
}

func TestPhasesUnknownVerdict(t *testing.T) {
	model := trainedModel(t)
	path := writeProfiledTrace(t, "Mimic")
	var out bytes.Buffer
	if err := run("phases", []string{"-model", model, path}, &out); err != nil {
		t.Fatalf("phases: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "verdict: unknown") || !strings.Contains(got, "outside trained classes") {
		t.Errorf("Mimic should verdict unknown with an explanation:\n%s", got)
	}
}

func TestPhasesOpenSetDisabled(t *testing.T) {
	model := trainedModel(t)
	path := writeProfiledTrace(t, "Mimic")
	var out bytes.Buffer
	if err := run("phases", []string{"-model", model, "-unknown-slack", "-1", path}, &out); err != nil {
		t.Fatalf("phases: %v", err)
	}
	if strings.Contains(out.String(), "verdict: unknown") {
		t.Errorf("-unknown-slack -1 should disable the open-set test:\n%s", out.String())
	}
}

func TestPhasesErrors(t *testing.T) {
	if err := run("phases", []string{"nonexistent.csv"}, &bytes.Buffer{}); err == nil {
		t.Error("phases on a missing trace should fail")
	}
	empty := writeTestTrace(t, 0)
	model := trainedModel(t)
	if err := run("phases", []string{"-model", model, empty}, &bytes.Buffer{}); err == nil {
		t.Error("phases on an empty trace should fail")
	}
}
