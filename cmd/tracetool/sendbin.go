package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// sendbinCmd replays a trace against a live appclassd daemon over the
// binary columnar protocol: one handshake to negotiate the metric-ID
// table, then one batch frame per -batch snapshots. The trace schema
// becomes the negotiated column order, so it must cover the daemon's
// schema exactly (project the trace first if it does not).
func sendbinCmd(w io.Writer, tr *metrics.Trace, addr, vm string, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("sendbin: -batch must be positive, got %d", batch)
	}
	if tr.Len() == 0 {
		return fmt.Errorf("sendbin: trace is empty")
	}
	if vm == "" {
		vm = tr.Node()
	}

	c := wire.NewClient(addr, tr.Schema().Names(), nil)
	ctx := context.Background()
	if err := c.Handshake(ctx); err != nil {
		return err
	}
	fmt.Fprintf(w, "stream: %d  model: %x  classes: %d\n",
		c.StreamID(), c.ModelHash(), len(c.Classes()))

	tally := make(map[string]int)
	batches := 0
	for start := 0; start < tr.Len(); start += batch {
		end := start + batch
		if end > tr.Len() {
			end = tr.Len()
		}
		g := wire.Group{
			VM:    vm,
			Times: make([]float64, 0, end-start),
			Rows:  make([][]float64, 0, end-start),
		}
		for i := start; i < end; i++ {
			snap := tr.At(i)
			g.Times = append(g.Times, snap.Time.Seconds())
			g.Rows = append(g.Rows, snap.Values)
		}
		classes, err := c.Send(ctx, []wire.Group{g})
		if err != nil {
			return fmt.Errorf("sendbin: batch %d: %w", batches, err)
		}
		for _, cl := range classes {
			tally[cl]++
		}
		batches++
	}

	fmt.Fprintf(w, "sent %d snapshots in %d batches as %q\n", tr.Len(), batches, vm)
	names := make([]string, 0, len(tally))
	for name := range tally {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\tsnapshots")
	for _, name := range names {
		fmt.Fprintf(tw, "%s\t%d\n", name, tally[name])
	}
	return tw.Flush()
}
