package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/wal"
)

// writeTestJournal builds a small journal directory with two batch
// records and one finalize marker, plus a checkpoint.
func writeTestJournal(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	snaps := []metrics.Snapshot{
		{Time: 0, Node: "vm1", Values: []float64{1, 2}},
		{Time: 5 * time.Second, Node: "vm1", Values: []float64{3, 4}},
	}
	for i := 0; i < 2; i++ {
		if _, err := j.AppendBatch("vm1", snaps); err != nil {
			t.Fatal(err)
		}
	}
	pos, err := j.AppendFinalize("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.SaveCheckpoint(dir, pos, time.Unix(1700000000, 0), "", []byte(`{"sessions":[]}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestJournalDump(t *testing.T) {
	dir := writeTestJournal(t)
	var out bytes.Buffer
	if err := run("journal", []string{"dump", dir}, &out); err != nil {
		t.Fatalf("dump: %v", err)
	}
	for _, want := range []string{"batch", "finalize", "vm1", "records: 3 (snapshots: 4)", "checkpoint 1: 0 session(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("dump output missing %q:\n%s", want, out.String())
		}
	}
}

func TestJournalVerifyAndTruncate(t *testing.T) {
	dir := writeTestJournal(t)
	var out bytes.Buffer
	if err := run("journal", []string{"verify", dir}, &out); err != nil {
		t.Fatalf("verify clean journal: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("verify output:\n%s", out.String())
	}

	// Tear the segment: verify must fail, truncate must repair it.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v (err %v)", segs, err)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-2); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run("journal", []string{"verify", dir}, &out); err == nil {
		t.Fatalf("verify torn journal: want error\n%s", out.String())
	}
	if !strings.Contains(out.String(), "TORN") {
		t.Errorf("verify output missing TORN:\n%s", out.String())
	}
	out.Reset()
	if err := run("journal", []string{"truncate", dir}, &out); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if !strings.Contains(out.String(), "truncated to") {
		t.Errorf("truncate output:\n%s", out.String())
	}
	out.Reset()
	if err := run("journal", []string{"verify", dir}, &out); err != nil {
		t.Fatalf("verify after repair: %v\n%s", err, out.String())
	}

	// Idempotent repair.
	out.Reset()
	if err := run("journal", []string{"truncate", dir}, &out); err != nil {
		t.Fatalf("second truncate: %v", err)
	}
	if !strings.Contains(out.String(), "nothing to repair") {
		t.Errorf("second truncate output:\n%s", out.String())
	}
}

func TestJournalUsageErrors(t *testing.T) {
	if err := run("journal", []string{"dump"}, &bytes.Buffer{}); err == nil {
		t.Error("missing dir: want error")
	}
	if err := run("journal", []string{"bogus", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("unknown subcommand: want error")
	}
}
