package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func writeTestTrace(t *testing.T, snapshots int) string {
	t.Helper()
	schema, err := metrics.NewSchema([]string{"cpu_user", "io_bi", "bytes_out"})
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTrace(schema, "vm1")
	for i := 0; i < snapshots; i++ {
		err := tr.Append(metrics.Snapshot{
			Time: time.Duration(i*5) * time.Second, Node: "vm1",
			Values: []float64{float64(i), float64(i * 10), float64(i * 100)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInfo(t *testing.T) {
	path := writeTestTrace(t, 10)
	var out bytes.Buffer
	if err := run("info", []string{path}, &out); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"node: vm1", "snapshots: 10", "metrics: 3", "span: 45s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, out.String())
		}
	}
}

func TestStats(t *testing.T) {
	path := writeTestTrace(t, 10)
	var out bytes.Buffer
	if err := run("stats", []string{path}, &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "cpu_user") || !strings.Contains(out.String(), "median") {
		t.Errorf("stats output incomplete:\n%s", out.String())
	}
}

func TestDownsample(t *testing.T) {
	path := writeTestTrace(t, 10)
	var out bytes.Buffer
	if err := run("downsample", []string{"-factor", "2", path}, &out); err != nil {
		t.Fatalf("downsample: %v", err)
	}
	tr, err := metrics.ReadCSV(&out)
	if err != nil {
		t.Fatalf("downsample output not valid CSV: %v", err)
	}
	if tr.Len() != 5 {
		t.Errorf("downsampled to %d snapshots, want 5", tr.Len())
	}
	if v, _ := tr.Value(1, "cpu_user"); v != 2 {
		t.Errorf("second kept snapshot cpu_user = %v, want 2", v)
	}
}

func TestProject(t *testing.T) {
	path := writeTestTrace(t, 4)
	var out bytes.Buffer
	if err := run("project", []string{"-metrics", "io_bi", path}, &out); err != nil {
		t.Fatalf("project: %v", err)
	}
	tr, err := metrics.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema().Len() != 1 || !tr.Schema().Contains("io_bi") {
		t.Errorf("projected schema = %v", tr.Schema().Names())
	}
}

func TestProjectRequiresMetrics(t *testing.T) {
	path := writeTestTrace(t, 2)
	var out bytes.Buffer
	if err := run("project", []string{path}, &out); err == nil {
		t.Error("project without -metrics: want error")
	}
}

func TestExpertRequiresExpertMetrics(t *testing.T) {
	// The 3-metric test trace lacks most expert metrics.
	path := writeTestTrace(t, 2)
	var out bytes.Buffer
	if err := run("expert", []string{path}, &out); err == nil {
		t.Error("expert on trace without expert metrics: want error")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("bogus", nil, &out); err == nil {
		t.Error("unknown command: want error")
	}
	if err := run("info", []string{"/does/not/exist.csv"}, &out); err == nil {
		t.Error("missing file: want error")
	}
	if err := run("info", []string{"a", "b"}, &out); err == nil {
		t.Error("two files: want error")
	}
	path := writeTestTrace(t, 4)
	if err := run("downsample", []string{"-factor", "0", path}, &out); err == nil {
		t.Error("factor 0: want error")
	}
	if err := run("help", nil, &out); err != nil {
		t.Errorf("help: %v", err)
	}
}
