// Command expreport regenerates every table and figure of the paper's
// evaluation section and prints them as a single report — the data
// behind EXPERIMENTS.md. Individual experiments can be selected with
// flags; with no selection the whole evaluation runs.
//
// Usage:
//
//	expreport                    # everything
//	expreport -table3 -figure3
//	expreport -figure3csv dir/   # also dump Figure 3 scatter data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		table2  = flag.Bool("table2", false, "Table 2: application registry")
		table3  = flag.Bool("table3", false, "Table 3: class compositions")
		figure3 = flag.Bool("figure3", false, "Figure 3: clustering diagrams")
		figure4 = flag.Bool("figure4", false, "Figure 4: schedule throughput")
		figure5 = flag.Bool("figure5", false, "Figure 5: per-application throughput")
		table4  = flag.Bool("table4", false, "Table 4: concurrent vs sequential")
		cost    = flag.Bool("cost", false, "Section 5.3: classification cost")
		csvDir  = flag.String("figure3csv", "", "directory to write Figure 3 scatter CSVs")
		md      = flag.String("markdown", "", "write the whole evaluation as a Markdown report to this file and exit")
		seed    = flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	)
	flag.Parse()
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
			os.Exit(1)
		}
		if err := report.Generate(f, *seed); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *md)
		return
	}
	any := *table2 || *table3 || *figure3 || *figure4 || *figure5 || *table4 || *cost
	sel := selection{
		table2: *table2 || !any, table3: *table3 || !any, figure3: *figure3 || !any,
		figure4: *figure4 || !any, figure5: *figure5 || !any, table4: *table4 || !any,
		cost: *cost || !any, csvDir: *csvDir, seed: *seed,
	}
	if err := run(sel); err != nil {
		fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
		os.Exit(1)
	}
}

type selection struct {
	table2, table3, figure3, figure4, figure5, table4, cost bool
	csvDir                                                  string
	seed                                                    int64
}

func run(sel selection) error {
	if sel.table2 {
		fmt.Println("== Table 2: training and testing applications ==")
		if err := experiments.RenderTable2(os.Stdout, experiments.Table2()); err != nil {
			return err
		}
		fmt.Println()
	}

	needSvc := sel.table3 || sel.figure3
	if needSvc {
		svc, err := experiments.NewTrainedService(sel.seed)
		if err != nil {
			return err
		}
		if sel.figure3 {
			diagrams, err := experiments.Figure3(svc, sel.seed)
			if err != nil {
				return err
			}
			fmt.Println("== Figure 3: application clustering diagrams (PCA feature space) ==")
			if err := experiments.RenderFigure3(os.Stdout, diagrams); err != nil {
				return err
			}
			fmt.Println()
			for _, d := range diagrams {
				if err := experiments.RenderFigure3Scatter(os.Stdout, d, 72, 20); err != nil {
					return err
				}
				fmt.Println()
			}
			if sel.csvDir != "" {
				if err := os.MkdirAll(sel.csvDir, 0o755); err != nil {
					return err
				}
				for i, d := range diagrams {
					path := filepath.Join(sel.csvDir, fmt.Sprintf("figure3%c.csv", 'a'+i))
					f, err := os.Create(path)
					if err != nil {
						return err
					}
					if err := experiments.WriteFigure3CSV(f, d); err != nil {
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
					fmt.Printf("wrote %s (%d points)\n", path, len(d.Points))
				}
				fmt.Println()
			}
		}
		if sel.table3 {
			rows, err := experiments.Table3(svc, sel.seed)
			if err != nil {
				return err
			}
			fmt.Println("== Table 3: application class compositions ==")
			if err := experiments.RenderTable3(os.Stdout, rows); err != nil {
				return err
			}
			fmt.Println()
		}
	}

	if sel.figure4 || sel.figure5 {
		f4, err := experiments.Figure4(sel.seed)
		if err != nil {
			return err
		}
		if sel.figure4 {
			fmt.Println("== Figure 4: system throughput of the ten schedules ==")
			if err := experiments.RenderFigure4(os.Stdout, f4); err != nil {
				return err
			}
			fmt.Println()
		}
		if sel.figure5 {
			f5, err := experiments.Figure5(f4)
			if err != nil {
				return err
			}
			fmt.Println("== Figure 5: per-application throughput ==")
			if err := experiments.RenderFigure5(os.Stdout, f5); err != nil {
				return err
			}
			fmt.Println()
		}
	}

	if sel.table4 {
		t4, err := experiments.Table4(sel.seed)
		if err != nil {
			return err
		}
		fmt.Println("== Table 4: concurrent vs sequential execution ==")
		if err := experiments.RenderTable4(os.Stdout, t4); err != nil {
			return err
		}
		fmt.Println()
	}

	if sel.cost {
		c, err := experiments.ClassificationCost(sel.seed)
		if err != nil {
			return err
		}
		fmt.Println("== Section 5.3: classification cost ==")
		if err := experiments.RenderCost(os.Stdout, c); err != nil {
			return err
		}
	}
	return nil
}
