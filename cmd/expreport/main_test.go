package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTable2Only(t *testing.T) {
	if err := run(selection{table2: true, seed: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFigure3WithCSVDump(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	dir := filepath.Join(t.TempDir(), "fig3")
	if err := run(selection{figure3: true, csvDir: dir, seed: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"figure3a.csv", "figure3b.csv", "figure3c.csv", "figure3d.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunTable4(t *testing.T) {
	if err := run(selection{table4: true, seed: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
