package main

import "testing"

func TestRunTable4Only(t *testing.T) {
	if err := run(false, false, true, 3); err != nil {
		t.Fatalf("run table4: %v", err)
	}
}

func TestRunFigure4And5(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	if err := run(true, true, false, 3); err != nil {
		t.Fatalf("run figures: %v", err)
	}
}
