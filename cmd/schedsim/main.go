// Command schedsim runs the paper's scheduling experiments on the
// simulated testbed: Figure 4 (system throughput of the ten schedules),
// Figure 5 (per-application throughput under the class-aware SPN
// schedule vs the field), and Table 4 (concurrent vs sequential
// execution of a CPU job and an I/O job).
//
// Usage:
//
//	schedsim -figure4
//	schedsim -figure5
//	schedsim -table4
//	schedsim            # all three
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		fig4     = flag.Bool("figure4", false, "run the ten-schedule throughput experiment")
		fig5     = flag.Bool("figure5", false, "run the per-application throughput comparison")
		table4   = flag.Bool("table4", false, "run the concurrent-vs-sequential experiment")
		online   = flag.Bool("online", false, "run the online (arriving-jobs) policy comparison")
		learning = flag.Bool("learning", false, "run the two-wave learning experiment")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	)
	flag.Parse()
	all := !*fig4 && !*fig5 && !*table4 && !*online && !*learning
	if err := run(*fig4 || all, *fig5 || all, *table4 || all, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
		os.Exit(1)
	}
	if *online || all {
		if err := runOnline(); err != nil {
			fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
			os.Exit(1)
		}
	}
	if *learning || all {
		if err := runLearning(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
			os.Exit(1)
		}
	}
}

func runLearning(seed int64) error {
	r, err := experiments.LearningWaves(seed)
	if err != nil {
		return err
	}
	fmt.Println("== Learning over historical runs: blind wave vs learned wave ==")
	return experiments.RenderLearning(os.Stdout, r)
}

func runOnline() error {
	r, err := experiments.OnlineScheduling(0, 0)
	if err != nil {
		return err
	}
	fmt.Println("== Online scheduling: class-aware vs random placement ==")
	return experiments.RenderOnline(os.Stdout, r)
}

func run(fig4, fig5, table4 bool, seed int64) error {
	var f4 *experiments.Figure4Result
	if fig4 || fig5 {
		var err error
		f4, err = experiments.Figure4(seed)
		if err != nil {
			return err
		}
	}
	if fig4 {
		fmt.Println("== Figure 4: system throughput of the ten schedules ==")
		if err := experiments.RenderFigure4(os.Stdout, f4); err != nil {
			return err
		}
		fmt.Println()
	}
	if fig5 {
		f5, err := experiments.Figure5(f4)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 5: per-application throughput ==")
		if err := experiments.RenderFigure5(os.Stdout, f5); err != nil {
			return err
		}
		fmt.Println()
	}
	if table4 {
		t4, err := experiments.Table4(seed)
		if err != nil {
			return err
		}
		fmt.Println("== Table 4: concurrent vs sequential execution ==")
		if err := experiments.RenderTable4(os.Stdout, t4); err != nil {
			return err
		}
	}
	return nil
}
