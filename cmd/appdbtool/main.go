// Command appdbtool inspects and maintains application databases
// produced by appclassd -db: list applications, summarize one
// application's learned behaviour, price it with provider rates,
// predict its next run time, query and prune records, and migrate
// legacy JSON files into the log-structured segmented store. Every
// command accepts either engine: a store directory or a legacy
// whole-file JSON database.
//
// Usage:
//
//	appdbtool list appdb
//	appdbtool ls -class cpu -since 2026-01-01T00:00:00Z -limit 20 appdb
//	appdbtool summary -app PostMark appdb
//	appdbtool quote -app PostMark -rates 10,8,6,4,1 appdb
//	appdbtool predict -app PostMark appdb
//	appdbtool fingerprints appdb
//	appdbtool retrain -out model.json appdb
//	appdbtool prune -keep 5 appdb
//	appdbtool scrub appdb
//	appdbtool migrate appdb.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/appstore"
	"repro/internal/costmodel"
	"repro/internal/modelreg"
	"repro/internal/predict"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "appdbtool: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: appdbtool <command> [flags] <appdb>
(the database argument is a store directory or a legacy JSON file)
commands:
  list     list applications with their modal class and run counts
  ls       list run records newest first
           (-app NAME -class C -verdict V -since T -until T -limit N -cursor C)
  summary  print one application's learned behaviour (-app NAME)
  quote    price an application (-app NAME -rates a,b,g,d,e)
  predict  predict an application's next run time (-app NAME [-k N])
  fingerprints
           list stored phase fingerprints and their dictionary matches
  retrain  refit a classifier from labeled runs' retained samples (-out FILE)
  prune    keep only the newest records per application (-keep N)
  scrub    verify every closed store segment frame-by-frame, repairing
           latent corruption (damaged originals kept as .corrupt)
  migrate  convert a legacy JSON database file into the segmented store`)
}

func run(cmd string, args []string, stdout io.Writer) error {
	switch cmd {
	case "list":
		return withDB(args, nil, func(db *appdb.DB, _ *flag.FlagSet) error {
			for _, c := range appclass.All() {
				for _, app := range db.ByClass(c) {
					s, err := db.Summarize(app)
					if err != nil {
						return err
					}
					fmt.Fprintf(stdout, "%-20s %-8s %d runs, mean %v\n",
						app, c.Display(), s.Runs, s.MeanExecution.Round(time.Second))
				}
			}
			fmt.Fprintf(stdout, "total: %d records, %v of execution\n",
				db.Len(), db.TotalExecution().Round(time.Second))
			return nil
		})
	case "summary":
		fs := flag.NewFlagSet("summary", flag.ContinueOnError)
		app := fs.String("app", "", "application name")
		return withDB(args, fs, func(db *appdb.DB, _ *flag.FlagSet) error {
			if *app == "" {
				return fmt.Errorf("summary: -app is required")
			}
			s, err := db.Summarize(*app)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "application: %s\nruns: %d\nclass: %s\nmean execution: %v\ncomposition:",
				s.App, s.Runs, s.Class.Display(), s.MeanExecution.Round(time.Second))
			for _, c := range appclass.All() {
				if f := s.MeanComposition[c]; f > 0 {
					fmt.Fprintf(stdout, " %s=%.2f%%", c.Display(), 100*f)
				}
			}
			fmt.Fprintln(stdout)
			return nil
		})
	case "quote":
		fs := flag.NewFlagSet("quote", flag.ContinueOnError)
		app := fs.String("app", "", "application name")
		rates := fs.String("rates", "", "cpu,mem,io,net,idle unit prices")
		return withDB(args, fs, func(db *appdb.DB, _ *flag.FlagSet) error {
			if *app == "" || *rates == "" {
				return fmt.Errorf("quote: -app and -rates are required")
			}
			r, err := parseRates(*rates)
			if err != nil {
				return err
			}
			s, err := db.Summarize(*app)
			if err != nil {
				return err
			}
			q, err := costmodel.QuoteRun(*app, s.MeanComposition, s.MeanExecution, r)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: unit cost %.4f/hour, mean run cost %.4f\n",
				q.App, q.UnitCost, q.RunCost)
			return nil
		})
	case "predict":
		fs := flag.NewFlagSet("predict", flag.ContinueOnError)
		app := fs.String("app", "", "application name")
		k := fs.Int("k", 3, "neighbours")
		return withDB(args, fs, func(db *appdb.DB, _ *flag.FlagSet) error {
			if *app == "" {
				return fmt.Errorf("predict: -app is required")
			}
			p, err := predict.New(db, *k)
			if err != nil {
				return err
			}
			est, err := p.PredictApp(db, *app)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: predicted execution %v (± %v over %d neighbours)\n",
				*app, est.Execution.Round(time.Second), est.Spread.Round(time.Second), len(est.Neighbors))
			return nil
		})
	case "fingerprints":
		return withDB(args, nil, func(db *appdb.DB, _ *flag.FlagSet) error {
			dict := db.Fingerprints()
			if len(dict) == 0 {
				fmt.Fprintln(stdout, "no fingerprinted runs")
				return nil
			}
			apps := make([]string, 0, len(dict))
			for app := range dict {
				apps = append(apps, app)
			}
			sort.Strings(apps)
			for _, app := range apps {
				rec, err := db.Latest(app)
				if err != nil {
					return err
				}
				line := fmt.Sprintf("%-20s %s", app, dict[app])
				if rec.MatchedApp != "" {
					line += fmt.Sprintf("  (matched %s, score %.2f)", rec.MatchedApp, rec.MatchScore)
				}
				if rec.Verdict == appclass.Unknown {
					line += "  [UNKNOWN verdict]"
				}
				fmt.Fprintln(stdout, line)
			}
			return nil
		})
	case "ls":
		fs := flag.NewFlagSet("ls", flag.ContinueOnError)
		app := fs.String("app", "", "only this application")
		class := fs.String("class", "", "only this class")
		verdict := fs.String("verdict", "", "only this verdict (a class, or unknown)")
		since := fs.String("since", "", "only runs finalized at or after this time (RFC3339 or unix seconds)")
		until := fs.String("until", "", "only runs finalized at or before this time (RFC3339 or unix seconds)")
		limit := fs.Int("limit", 0, "page size (default 50, max 1000)")
		cursor := fs.Uint64("cursor", 0, "resume a previous page (0 starts at the newest run)")
		return withDB(args, fs, func(db *appdb.DB, _ *flag.FlagSet) error {
			f := appdb.Filter{
				App:     *app,
				Class:   appclass.Class(*class),
				Verdict: appclass.Class(*verdict),
			}
			if f.Class != "" && !appclass.Valid(f.Class) {
				return fmt.Errorf("ls: unknown class %q", f.Class)
			}
			if f.Verdict != "" && f.Verdict != appclass.Unknown && !appclass.Valid(f.Verdict) {
				return fmt.Errorf("ls: unknown verdict %q", f.Verdict)
			}
			var err error
			if f.Since, err = parseTime(*since); err != nil {
				return fmt.Errorf("ls: -since: %w", err)
			}
			if f.Until, err = parseTime(*until); err != nil {
				return fmt.Errorf("ls: -until: %w", err)
			}
			recs, next, err := db.Scan(f, *cursor, *limit)
			if err != nil {
				return err
			}
			for _, r := range recs {
				at := "-"
				if r.FinalizedAt > 0 {
					at = time.Unix(0, r.FinalizedAt).UTC().Format(time.RFC3339)
				}
				verdict := string(r.Verdict)
				if verdict == "" {
					verdict = "-"
				}
				fmt.Fprintf(stdout, "%-20s %-8s %-8s %8v %6d samples  %s\n",
					r.App, r.Class.Display(), verdict,
					r.ExecutionTime.Round(time.Second), r.Samples, at)
			}
			if next != 0 {
				fmt.Fprintf(stdout, "more: rerun with -cursor %d\n", next)
			} else {
				fmt.Fprintf(stdout, "%d record(s), end of database\n", len(recs))
			}
			return nil
		})
	case "prune":
		fs := flag.NewFlagSet("prune", flag.ContinueOnError)
		keep := fs.Int("keep", 10, "records to keep per application")
		return withDBPath(args, fs, func(db *appdb.DB, path string) error {
			dropped := db.Prune(*keep)
			// The segmented store persisted the prune itself (tombstones
			// plus compaction); a legacy JSON database needs a rewrite.
			if db.Store() == nil {
				if err := db.SaveFile(path); err != nil {
					return err
				}
			}
			fmt.Fprintf(stdout, "dropped %d records, kept %d\n", dropped, db.Len())
			return nil
		})
	case "migrate":
		return withArgPath(args, func(path string) error {
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			if fi.IsDir() {
				fmt.Fprintf(stdout, "%s is already a segmented store\n", path)
				return nil
			}
			db, err := appdb.Open(path, appstore.Options{})
			if err != nil {
				return err
			}
			defer db.Close()
			st, _ := db.StoreStats()
			fmt.Fprintf(stdout, "migrated %s: %d record(s) in %d segment(s), %d bytes (legacy file kept at %s.legacy)\n",
				path, st.LiveRecords, st.Segments, st.Bytes, path)
			return nil
		})
	case "scrub":
		return withDB(args, nil, func(db *appdb.DB, _ *flag.FlagSet) error {
			st := db.Store()
			if st == nil {
				return fmt.Errorf("scrub: %v is a legacy JSON database; only the segmented store can be scrubbed", args)
			}
			// Cover every closed segment in one pass: the store's Scrub
			// cursor is per-open, so one big budget beats looping.
			stats, _ := db.StoreStats()
			sum, err := st.Scrub(stats.Segments + 1)
			if err != nil {
				return err
			}
			for _, rep := range sum.Damaged {
				status := "damaged, not repaired: " + rep.SkipReason
				if rep.Repaired {
					status = fmt.Sprintf("repaired, %d live record(s) lost (quarantined %s)", rep.LostRecords, rep.Quarantined)
				}
				fmt.Fprintf(stdout, "segment %d: %d bad frame(s), %s\n", rep.Seg, rep.BadFrames, status)
			}
			fmt.Fprintf(stdout, "scrubbed %d closed segment(s), %d damaged\n", sum.Scanned, len(sum.Damaged))
			if n := len(sum.Damaged); n > 0 {
				for _, rep := range sum.Damaged {
					if !rep.Repaired {
						return fmt.Errorf("scrub: %d segment(s) damaged, not all repaired", n)
					}
				}
			}
			return nil
		})
	case "retrain":
		fs := flag.NewFlagSet("retrain", flag.ContinueOnError)
		out := fs.String("out", "", "write the refit classifier artifact here (required)")
		k := fs.Int("k", 0, "k-NN vote count (default: classify's default)")
		components := fs.Int("components", 0, "PCA components (default: classify's default)")
		minRows := fs.Int("min-rows", 0, "minimum retained sample rows per class (default 8)")
		maxRows := fs.Int("max-rows", 0, "cap training rows per class, newest first (default 4096, negative unlimited)")
		return withDB(args, fs, func(db *appdb.DB, _ *flag.FlagSet) error {
			if *out == "" {
				return fmt.Errorf("retrain: -out is required")
			}
			cl, stats, err := modelreg.Retrain(db, modelreg.RetrainConfig{
				K:               *k,
				Components:      *components,
				MinRowsPerClass: *minRows,
				MaxRowsPerClass: *maxRows,
			})
			if err != nil {
				return err
			}
			if err := modelreg.SaveFile(*out, cl); err != nil {
				return err
			}
			m, err := modelreg.NewModel(cl, modelreg.DefaultParams(), "file:"+*out, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "retrained from %d record(s) (%d skipped for UNKNOWN verdicts)\n", stats.Records, stats.SkippedUnknown)
			classes := make([]appclass.Class, 0, len(stats.RowsPerClass))
			for c := range stats.RowsPerClass {
				classes = append(classes, c)
			}
			sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
			for _, c := range classes {
				fmt.Fprintf(stdout, "  %-12s %d rows\n", c.Display(), stats.RowsPerClass[c])
			}
			for _, c := range stats.DroppedClasses {
				fmt.Fprintf(stdout, "  %-12s dropped (too few rows)\n", c.Display())
			}
			fmt.Fprintf(stdout, "artifact: %s\nmodel id: %s (hash under default serving params)\n", *out, m.ID)
			fmt.Fprintf(stdout, "load it into a running daemon: curl -X POST localhost:8080/v1/models -d '{\"path\":%q}'\n", *out)
			return nil
		})
	case "help", "-h", "--help":
		usage(stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: appdbtool help)", cmd)
	}
}

// withDB parses flags (when fs is non-nil), opens the database from the
// single positional argument, and invokes fn.
func withDB(args []string, fs *flag.FlagSet, fn func(*appdb.DB, *flag.FlagSet) error) error {
	return withDBPath(args, fs, func(db *appdb.DB, _ string) error { return fn(db, fs) })
}

func withDBPath(args []string, fs *flag.FlagSet, fn func(*appdb.DB, string) error) error {
	if fs != nil {
		if err := fs.Parse(args); err != nil {
			return err
		}
		args = fs.Args()
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one database path, got %v", args)
	}
	db, err := openDB(args[0])
	if err != nil {
		return err
	}
	defer db.Close()
	return fn(db, args[0])
}

// openDB opens either engine without converting anything: a directory
// is a segmented store, a regular file a legacy JSON database (use the
// migrate command to convert one).
func openDB(path string) (*appdb.DB, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		return appdb.Open(path, appstore.Options{})
	}
	return appdb.LoadFile(path)
}

// withArgPath runs fn on the single positional argument.
func withArgPath(args []string, fn func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one database path, got %v", args)
	}
	return fn(args[0])
}

// parseTime accepts RFC3339 or integer unix seconds; zero when empty.
func parseTime(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return secs * int64(time.Second), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t.UnixNano(), nil
	}
	return 0, fmt.Errorf("want RFC3339 or unix seconds, got %q", v)
}

func parseRates(spec string) (costmodel.Rates, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 5 {
		return costmodel.Rates{}, fmt.Errorf("rates must be 5 comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 5)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return costmodel.Rates{}, fmt.Errorf("rate %d: %w", i, err)
		}
		vals[i] = v
	}
	return costmodel.Rates{CPU: vals[0], Mem: vals[1], IO: vals[2], Net: vals[3], Idle: vals[4]}, nil
}
