package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/appstore"
)

func writeTestDB(t *testing.T) string {
	t.Helper()
	db := appdb.New()
	put := func(app string, c appclass.Class, exec time.Duration) {
		err := db.Put(appdb.Record{
			App: app, Class: c,
			Composition:   map[appclass.Class]float64{c: 1},
			ExecutionTime: exec, Samples: int(exec / (5 * time.Second)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	put("seis", appclass.CPU, 600*time.Second)
	put("seis", appclass.CPU, 620*time.Second)
	put("postmark", appclass.IO, 260*time.Second)
	put("postmark", appclass.IO, 250*time.Second)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestList(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("list", []string{path}, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, want := range []string{"seis", "postmark", "CPU", "I/O", "total: 4 records"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestSummary(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("summary", []string{"-app", "seis", path}, &out); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !strings.Contains(out.String(), "runs: 2") || !strings.Contains(out.String(), "class: CPU") {
		t.Errorf("summary output:\n%s", out.String())
	}
	if err := run("summary", []string{path}, &out); err == nil {
		t.Error("summary without -app: want error")
	}
	if err := run("summary", []string{"-app", "ghost", path}, &out); err == nil {
		t.Error("unknown app: want error")
	}
}

func TestQuote(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("quote", []string{"-app", "seis", "-rates", "10,8,6,4,1", path}, &out); err != nil {
		t.Fatalf("quote: %v", err)
	}
	if !strings.Contains(out.String(), "unit cost 10.0000/hour") {
		t.Errorf("quote output:\n%s", out.String())
	}
	if err := run("quote", []string{"-app", "seis", path}, &out); err == nil {
		t.Error("quote without rates: want error")
	}
	if err := run("quote", []string{"-app", "seis", "-rates", "1,2", path}, &out); err == nil {
		t.Error("bad rates: want error")
	}
}

func TestPredict(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("predict", []string{"-app", "postmark", path}, &out); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !strings.Contains(out.String(), "predicted execution 4m") {
		t.Errorf("predict output:\n%s", out.String())
	}
}

func TestPrune(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("prune", []string{"-keep", "1", path}, &out); err != nil {
		t.Fatalf("prune: %v", err)
	}
	if !strings.Contains(out.String(), "dropped 2 records, kept 2") {
		t.Errorf("prune output:\n%s", out.String())
	}
	db, err := appdb.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("db after prune = %d records", db.Len())
	}
}

// writeTestStore builds the same database as writeTestDB but in the
// segmented store engine, with finalize stamps so time filters bite.
func writeTestStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "appdb")
	db, err := appdb.Open(path, appstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	put := func(app string, c appclass.Class, exec time.Duration, atSecs int64) {
		err := db.Put(appdb.Record{
			App: app, Class: c,
			Composition:   map[appclass.Class]float64{c: 1},
			ExecutionTime: exec, Samples: int(exec / (5 * time.Second)),
			FinalizedAt: atSecs * int64(time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	put("seis", appclass.CPU, 600*time.Second, 1000)
	put("seis", appclass.CPU, 620*time.Second, 2000)
	put("postmark", appclass.IO, 260*time.Second, 3000)
	put("postmark", appclass.IO, 250*time.Second, 4000)
	return path
}

func TestCommandsOnStoreDirectory(t *testing.T) {
	path := writeTestStore(t)
	var out bytes.Buffer
	if err := run("list", []string{path}, &out); err != nil {
		t.Fatalf("list on store: %v", err)
	}
	if !strings.Contains(out.String(), "total: 4 records") {
		t.Errorf("list output:\n%s", out.String())
	}
	out.Reset()
	if err := run("summary", []string{"-app", "seis", path}, &out); err != nil {
		t.Fatalf("summary on store: %v", err)
	}
	if !strings.Contains(out.String(), "runs: 2") {
		t.Errorf("summary output:\n%s", out.String())
	}
	out.Reset()
	if err := run("prune", []string{"-keep", "1", path}, &out); err != nil {
		t.Fatalf("prune on store: %v", err)
	}
	if !strings.Contains(out.String(), "dropped 2 records, kept 2") {
		t.Errorf("prune output:\n%s", out.String())
	}
	// The prune must have hit the segments, not just memory.
	db, err := appdb.Open(path, appstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 2 {
		t.Errorf("store after prune = %d records, want 2", db.Len())
	}
}

func TestLs(t *testing.T) {
	path := writeTestStore(t)
	var out bytes.Buffer
	if err := run("ls", []string{path}, &out); err != nil {
		t.Fatalf("ls: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "seis") || !strings.Contains(got, "postmark") ||
		!strings.Contains(got, "end of database") {
		t.Errorf("ls output:\n%s", got)
	}
	// Newest first: the 4000s postmark run leads.
	if first := strings.SplitN(got, "\n", 2)[0]; !strings.Contains(first, "postmark") {
		t.Errorf("ls first row = %q, want newest (postmark)", first)
	}

	out.Reset()
	if err := run("ls", []string{"-class", "cpu", path}, &out); err != nil {
		t.Fatalf("ls -class: %v", err)
	}
	if strings.Contains(out.String(), "postmark") {
		t.Errorf("ls -class cpu leaked postmark:\n%s", out.String())
	}

	out.Reset()
	if err := run("ls", []string{"-since", "3500", path}, &out); err != nil {
		t.Fatalf("ls -since: %v", err)
	}
	if !strings.Contains(out.String(), "1 record(s)") {
		t.Errorf("ls -since 3500 output:\n%s", out.String())
	}

	// Pagination: page size 1 over 4 records yields a resume cursor.
	out.Reset()
	if err := run("ls", []string{"-limit", "1", path}, &out); err != nil {
		t.Fatalf("ls -limit 1: %v", err)
	}
	if !strings.Contains(out.String(), "more: rerun with -cursor ") {
		t.Errorf("ls -limit 1 output:\n%s", out.String())
	}
	cursorLine := out.String()[strings.Index(out.String(), "-cursor "):]
	cursor := strings.TrimSpace(strings.TrimPrefix(cursorLine, "-cursor "))
	out.Reset()
	if err := run("ls", []string{"-limit", "10", "-cursor", cursor, path}, &out); err != nil {
		t.Fatalf("ls resume: %v", err)
	}
	if !strings.Contains(out.String(), "3 record(s), end of database") {
		t.Errorf("ls resume output:\n%s", out.String())
	}

	for _, args := range [][]string{
		{"-class", "bogus", path},
		{"-verdict", "bogus", path},
		{"-since", "yesterday", path},
	} {
		if err := run("ls", args, &out); err == nil {
			t.Errorf("ls %v: want error", args)
		}
	}
}

func TestMigrate(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("migrate", []string{path}, &out); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !strings.Contains(out.String(), "migrated") || !strings.Contains(out.String(), "4 record(s)") {
		t.Errorf("migrate output:\n%s", out.String())
	}
	// The path is now a store directory serving the same records, and
	// the legacy file was preserved next to it.
	out.Reset()
	if err := run("list", []string{path}, &out); err != nil {
		t.Fatalf("list after migrate: %v", err)
	}
	if !strings.Contains(out.String(), "total: 4 records") {
		t.Errorf("list after migrate:\n%s", out.String())
	}
	if _, err := appdb.LoadFile(path + ".legacy"); err != nil {
		t.Errorf("legacy file not preserved: %v", err)
	}
	// Migrating twice is a no-op, not an error.
	out.Reset()
	if err := run("migrate", []string{path}, &out); err != nil {
		t.Fatalf("second migrate: %v", err)
	}
	if !strings.Contains(out.String(), "already a segmented store") {
		t.Errorf("second migrate output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("bogus", nil, &out); err == nil {
		t.Error("unknown command: want error")
	}
	if err := run("list", []string{"/no/such/file.json"}, &out); err == nil {
		t.Error("missing file: want error")
	}
	if err := run("list", []string{"a", "b"}, &out); err == nil {
		t.Error("two files: want error")
	}
	if err := run("help", nil, &out); err != nil {
		t.Errorf("help: %v", err)
	}
}
