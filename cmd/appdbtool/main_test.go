package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
)

func writeTestDB(t *testing.T) string {
	t.Helper()
	db := appdb.New()
	put := func(app string, c appclass.Class, exec time.Duration) {
		err := db.Put(appdb.Record{
			App: app, Class: c,
			Composition:   map[appclass.Class]float64{c: 1},
			ExecutionTime: exec, Samples: int(exec / (5 * time.Second)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	put("seis", appclass.CPU, 600*time.Second)
	put("seis", appclass.CPU, 620*time.Second)
	put("postmark", appclass.IO, 260*time.Second)
	put("postmark", appclass.IO, 250*time.Second)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestList(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("list", []string{path}, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, want := range []string{"seis", "postmark", "CPU", "I/O", "total: 4 records"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestSummary(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("summary", []string{"-app", "seis", path}, &out); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !strings.Contains(out.String(), "runs: 2") || !strings.Contains(out.String(), "class: CPU") {
		t.Errorf("summary output:\n%s", out.String())
	}
	if err := run("summary", []string{path}, &out); err == nil {
		t.Error("summary without -app: want error")
	}
	if err := run("summary", []string{"-app", "ghost", path}, &out); err == nil {
		t.Error("unknown app: want error")
	}
}

func TestQuote(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("quote", []string{"-app", "seis", "-rates", "10,8,6,4,1", path}, &out); err != nil {
		t.Fatalf("quote: %v", err)
	}
	if !strings.Contains(out.String(), "unit cost 10.0000/hour") {
		t.Errorf("quote output:\n%s", out.String())
	}
	if err := run("quote", []string{"-app", "seis", path}, &out); err == nil {
		t.Error("quote without rates: want error")
	}
	if err := run("quote", []string{"-app", "seis", "-rates", "1,2", path}, &out); err == nil {
		t.Error("bad rates: want error")
	}
}

func TestPredict(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("predict", []string{"-app", "postmark", path}, &out); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !strings.Contains(out.String(), "predicted execution 4m") {
		t.Errorf("predict output:\n%s", out.String())
	}
}

func TestPrune(t *testing.T) {
	path := writeTestDB(t)
	var out bytes.Buffer
	if err := run("prune", []string{"-keep", "1", path}, &out); err != nil {
		t.Fatalf("prune: %v", err)
	}
	if !strings.Contains(out.String(), "dropped 2 records, kept 2") {
		t.Errorf("prune output:\n%s", out.String())
	}
	db, err := appdb.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("db after prune = %d records", db.Len())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("bogus", nil, &out); err == nil {
		t.Error("unknown command: want error")
	}
	if err := run("list", []string{"/no/such/file.json"}, &out); err == nil {
		t.Error("missing file: want error")
	}
	if err := run("list", []string{"a", "b"}, &out); err == nil {
		t.Error("two files: want error")
	}
	if err := run("help", nil, &out); err != nil {
		t.Errorf("help: %v", err)
	}
}
