package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/phase"
)

// writeFingerprintDB builds a database with two fingerprinted runs: a
// plain CPU run and an adversarial run that matched it with an UNKNOWN
// verdict.
func writeFingerprintDB(t *testing.T) string {
	t.Helper()
	db := appdb.New()
	cpuPhases := []phase.Phase{{
		Class: appclass.CPU, Start: 0, End: 600 * time.Second, Snapshots: 120,
		Composition: map[appclass.Class]float64{appclass.CPU: 1},
		Centroid:    []float64{1, 0},
	}}
	cpuFP := phase.NewFingerprint(cpuPhases)
	if err := db.Put(appdb.Record{
		App: "seis", Class: appclass.CPU,
		Composition:   map[appclass.Class]float64{appclass.CPU: 1},
		ExecutionTime: 600 * time.Second, Samples: 120,
		Phases: cpuPhases, Fingerprint: &cpuFP,
	}); err != nil {
		t.Fatal(err)
	}
	mimicFP := phase.NewFingerprint(cpuPhases)
	if err := db.Put(appdb.Record{
		App: "mimic", Class: appclass.CPU,
		Composition:   map[appclass.Class]float64{appclass.CPU: 1},
		ExecutionTime: 300 * time.Second, Samples: 60,
		Phases: cpuPhases, Fingerprint: &mimicFP,
		MatchedApp: "seis", MatchScore: 0.75,
		Verdict: appclass.Unknown, UnknownFraction: 0.8,
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFingerprints(t *testing.T) {
	path := writeFingerprintDB(t)
	var out bytes.Buffer
	if err := run("fingerprints", []string{path}, &out); err != nil {
		t.Fatalf("fingerprints: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"seis", "cpu:1.00",
		"mimic", "(matched seis, score 0.75)", "[UNKNOWN verdict]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("fingerprints output missing %q:\n%s", want, got)
		}
	}
}

func TestFingerprintsEmpty(t *testing.T) {
	path := writeTestDB(t) // no fingerprinted runs
	var out bytes.Buffer
	if err := run("fingerprints", []string{path}, &out); err != nil {
		t.Fatalf("fingerprints: %v", err)
	}
	if !strings.Contains(out.String(), "no fingerprinted runs") {
		t.Errorf("fingerprints on a fingerprint-free database:\n%s", out.String())
	}
}
