// Command placetool scores what-if placements offline: it loads a saved
// application database, predicts each requested application's class
// composition from its historical runs (falling back to the uniform
// prior when unseen), and places them one by one onto a simulated host
// inventory with the same class-aware scoring the appclassd placement
// service uses live. The output shows each decision with its ranked
// alternatives and the final per-host class mix — a dry run of the
// paper's class-aware scheduler against real history.
//
// Usage:
//
//	placetool -hosts hostA:3,hostB:3,hostC:3 appdb.json
//	placetool -hosts h1:4,h2:4 -apps PostMark,Stream,NetPIPE -rates 10,8,6,4,1 appdb.json
//	placetool -hosts h1:2,h2:2 -json appdb.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/costmodel"
	"repro/internal/placement"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "placetool: %v\n", err)
		os.Exit(1)
	}
}

// report is the -json output document.
type report struct {
	Decisions []decision           `json:"decisions"`
	Hosts     []placement.HostView `json:"hosts"`
}

type decision struct {
	App          string                     `json:"app"`
	Class        appclass.Class             `json:"class"`
	Source       string                     `json:"source"`
	Host         string                     `json:"host"`
	Score        float64                    `json:"score"`
	Composition  map[appclass.Class]float64 `json:"composition"`
	Alternatives []placement.HostScore      `json:"alternatives"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("placetool", flag.ContinueOnError)
	hostsSpec := fs.String("hosts", "", "host inventory as name:slots[,name:slots...] (required)")
	appsSpec := fs.String("apps", "", "comma-separated applications to place (default: all in the database)")
	ratesSpec := fs.String("rates", "", "cost-model rates as cpu,mem,io,net,idle (default 1,1,1,1,0)")
	asJSON := fs.Bool("json", false, "emit the decisions and final inventory as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hostsSpec == "" {
		return fmt.Errorf("-hosts is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one database file, got %v", fs.Args())
	}
	db, err := appdb.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	hosts, err := parseHosts(*hostsSpec)
	if err != nil {
		return err
	}
	var rates costmodel.Rates
	if *ratesSpec != "" {
		if rates, err = parseRates(*ratesSpec); err != nil {
			return err
		}
	}
	svc, err := placement.New(placement.Config{Hosts: hosts, Rates: rates, History: db})
	if err != nil {
		return err
	}

	apps := db.Apps()
	if *appsSpec != "" {
		apps = apps[:0]
		for _, a := range strings.Split(*appsSpec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				apps = append(apps, a)
			}
		}
	}
	if len(apps) == 0 {
		return fmt.Errorf("no applications to place")
	}

	var rep report
	for _, app := range apps {
		d, err := svc.Place(app)
		if err != nil {
			return fmt.Errorf("place %s: %w", app, err)
		}
		rep.Decisions = append(rep.Decisions, decision{
			App:          d.App,
			Class:        d.Class,
			Source:       d.Source,
			Host:         d.Host,
			Score:        d.Score,
			Composition:  d.Composition,
			Alternatives: d.Alternatives,
		})
	}
	rep.Hosts = svc.Hosts()

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Fprintf(stdout, "%-24s %-8s %-8s %-12s %8s  alternatives\n", "application", "class", "source", "host", "score")
	for _, d := range rep.Decisions {
		alts := make([]string, 0, len(d.Alternatives))
		for _, a := range d.Alternatives {
			alts = append(alts, fmt.Sprintf("%s=%.3f", a.Host, a.Score))
		}
		fmt.Fprintf(stdout, "%-24s %-8s %-8s %-12s %8.3f  %s\n",
			d.App, d.Class, d.Source, d.Host, d.Score, strings.Join(alts, " "))
	}
	fmt.Fprintln(stdout)
	for _, h := range rep.Hosts {
		var mix []string
		for _, c := range appclass.All() {
			if f := h.Load[c]; f > 0 {
				mix = append(mix, fmt.Sprintf("%s=%.2f", c, f))
			}
		}
		fmt.Fprintf(stdout, "%-12s %d/%d slots  load %s\n", h.Name, h.Used, h.Slots, strings.Join(mix, " "))
	}
	return nil
}

// parseHosts parses a "name:slots,name:slots" inventory spec.
func parseHosts(spec string) ([]placement.HostSpec, error) {
	var out []placement.HostSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, slotsStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("host %q: want name:slots", part)
		}
		slots, err := strconv.Atoi(strings.TrimSpace(slotsStr))
		if err != nil {
			return nil, fmt.Errorf("host %q: %w", part, err)
		}
		out = append(out, placement.HostSpec{Name: strings.TrimSpace(name), Slots: slots})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty host inventory %q", spec)
	}
	return out, nil
}

// parseRates parses "cpu,mem,io,net,idle" unit prices.
func parseRates(spec string) (costmodel.Rates, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 5 {
		return costmodel.Rates{}, fmt.Errorf("rates must be 5 comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 5)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return costmodel.Rates{}, fmt.Errorf("rate %d: %w", i, err)
		}
		vals[i] = v
	}
	return costmodel.Rates{CPU: vals[0], Mem: vals[1], IO: vals[2], Net: vals[3], Idle: vals[4]}, nil
}
