package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
)

// sampleDB writes a database with one strongly-classed application per
// paper class and returns its path.
func sampleDB(t *testing.T) string {
	t.Helper()
	db := appdb.New()
	for _, r := range []appdb.Record{
		{App: "SPECseis96_C", Class: appclass.CPU,
			Composition:   map[appclass.Class]float64{appclass.CPU: 0.9, appclass.Idle: 0.1},
			ExecutionTime: 10 * time.Minute, Samples: 120},
		{App: "PostMark", Class: appclass.IO,
			Composition:   map[appclass.Class]float64{appclass.IO: 0.8, appclass.Idle: 0.2},
			ExecutionTime: 5 * time.Minute, Samples: 60},
		{App: "NetPIPE", Class: appclass.Net,
			Composition:   map[appclass.Class]float64{appclass.Net: 0.85, appclass.Idle: 0.15},
			ExecutionTime: 4 * time.Minute, Samples: 48},
	} {
		if err := db.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "appdb.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidation(t *testing.T) {
	db := sampleDB(t)
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"no hosts":        {db},
		"no db":           {"-hosts", "a:2"},
		"two positionals": {"-hosts", "a:2", db, db},
		"missing db file": {"-hosts", "a:2", filepath.Join(t.TempDir(), "nope.json")},
		"bad hosts":       {"-hosts", "a", db},
		"bad rates":       {"-hosts", "a:2", "-rates", "1,2", db},
		"unknown app":     {"-hosts", "a:9", "-apps", " , ", db},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// TestRunPlacesHistory places the three sample applications and expects
// one per host: history-sourced predictions, complementary classes
// spread across the inventory.
func TestRunPlacesHistory(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-hosts", "h1:1,h2:1,h3:1", sampleDB(t)}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"SPECseis96_C", "PostMark", "NetPIPE", "history", "h1", "h2", "h3"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-hosts", "h1:3", "-apps", "PostMark,unseen", "-json", sampleDB(t)}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Decisions) != 2 {
		t.Fatalf("decisions = %d, want 2", len(rep.Decisions))
	}
	if rep.Decisions[0].Source != "history" || rep.Decisions[0].Class != appclass.IO {
		t.Errorf("PostMark decision = %+v", rep.Decisions[0])
	}
	if rep.Decisions[1].Source != "prior" {
		t.Errorf("unseen app source = %q, want prior", rep.Decisions[1].Source)
	}
	if len(rep.Hosts) != 1 || rep.Hosts[0].Used != 2 {
		t.Errorf("hosts = %+v", rep.Hosts)
	}
}
