// Command appclass is the application classifier CLI: it trains the
// classification center on the five class-representative applications
// (Section 4.2.3) and classifies either a named registry application
// (profiled on the simulated testbed) or a previously recorded trace
// CSV, printing the application class and class composition and
// optionally recording the run in an application-database file.
//
// Usage:
//
//	appclass -app PostMark
//	appclass -trace run.csv
//	appclass -app SPECseis96_B -db appdb.json -rates 10,8,6,4,1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		app    = flag.String("app", "", "registry application to profile and classify")
		trace  = flag.String("trace", "", "classify a trace CSV instead of running an application")
		seed   = flag.Int64("seed", 1, "simulation seed")
		dbPath = flag.String("db", "", "application database JSON file to append the record to")
		rates  = flag.String("rates", "", "cost rates alpha,beta,gamma,delta,epsilon (cpu,mem,io,net,idle) to price the run")
		k      = flag.Int("k", 0, "k-NN neighbour count (default: the paper's 3)")
		comps  = flag.Int("q", 0, "principal components (default: the paper's 2)")
		model  = flag.String("model", "", "load a trained classifier from this JSON file instead of training")
		save   = flag.String("savemodel", "", "save the trained classifier to this JSON file")
	)
	flag.Parse()
	if err := run(*app, *trace, *seed, *dbPath, *rates, *k, *comps, *model, *save); err != nil {
		fmt.Fprintf(os.Stderr, "appclass: %v\n", err)
		os.Exit(1)
	}
}

func run(app, tracePath string, seed int64, dbPath, ratesSpec string, k, comps int, modelPath, savePath string) error {
	if (app == "") == (tracePath == "") {
		return fmt.Errorf("exactly one of -app and -trace is required")
	}
	opts := core.Options{Seed: seed}
	opts.Classifier.K = k
	opts.Classifier.Components = comps
	var svc *core.Service
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		cl, err := classify.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		svc, err = core.NewServiceWithClassifier(cl, opts)
		if err != nil {
			return err
		}
	} else {
		var err error
		svc, err = core.NewService(opts)
		if err != nil {
			return err
		}
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		if err := svc.Classifier().Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("model saved to %s\n", savePath)
	}

	var report *core.RunReport
	switch {
	case app != "":
		entry, err := workload.Find(app)
		if err != nil {
			return err
		}
		report, err = svc.ProfileAndClassify(entry, seed)
		if err != nil {
			return err
		}
	default:
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		tr, err := metrics.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		elapsed := tr.Duration()
		report, err = svc.ClassifyTrace(strings.TrimSuffix(tracePath, ".csv"), tr, elapsed)
		if err != nil {
			return err
		}
	}

	fmt.Printf("application: %s\n", report.App)
	fmt.Printf("snapshots:   %d over %v\n", report.Samples, report.Elapsed.Round(time.Second))
	fmt.Printf("class:       %s\n", report.Result.Class.Display())
	fmt.Print("composition:")
	for _, c := range appclass.All() {
		if f := report.Result.Composition[c]; f > 0 {
			fmt.Printf(" %s=%.2f%%", c.Display(), 100*f)
		}
	}
	fmt.Println()

	if ratesSpec != "" {
		r, err := parseRates(ratesSpec)
		if err != nil {
			return err
		}
		quote, err := svc.Quote(report.App, r)
		if err != nil {
			return err
		}
		fmt.Printf("unit cost:   %.3f/hour; run cost: %.3f\n", quote.UnitCost, quote.RunCost)
	}
	if dbPath != "" {
		if err := svc.DB().SaveFile(dbPath); err != nil {
			return err
		}
		fmt.Printf("recorded in %s\n", dbPath)
	}
	return nil
}

func parseRates(spec string) (costmodel.Rates, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 5 {
		return costmodel.Rates{}, fmt.Errorf("rates must be 5 comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 5)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return costmodel.Rates{}, fmt.Errorf("rate %d: %w", i, err)
		}
		vals[i] = v
	}
	return costmodel.Rates{CPU: vals[0], Mem: vals[1], IO: vals[2], Net: vals[3], Idle: vals[4]}, nil
}
