package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/appdb"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func TestParseRates(t *testing.T) {
	r, err := parseRates("10, 8,6,4,1")
	if err != nil {
		t.Fatalf("parseRates: %v", err)
	}
	if r.CPU != 10 || r.Mem != 8 || r.IO != 6 || r.Net != 4 || r.Idle != 1 {
		t.Errorf("rates = %+v", r)
	}
	if _, err := parseRates("1,2,3"); err == nil {
		t.Error("3 rates: want error")
	}
	if _, err := parseRates("a,b,c,d,e"); err == nil {
		t.Error("non-numeric: want error")
	}
}

func TestRunRequiresExactlyOneInput(t *testing.T) {
	if err := run("", "", 1, "", "", 0, 0, "", ""); err == nil {
		t.Error("neither -app nor -trace: want error")
	}
	if err := run("XSpim", "x.csv", 1, "", "", 0, 0, "", ""); err == nil {
		t.Error("both -app and -trace: want error")
	}
}

func TestRunClassifiesApp(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "db.json")
	if err := run("XSpim", "", 1, dbPath, "10,8,6,4,1", 0, 0, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	db, err := appdb.LoadFile(dbPath)
	if err != nil {
		t.Fatalf("db not written: %v", err)
	}
	if db.Len() != 1 {
		t.Errorf("db has %d records", db.Len())
	}
	rec, err := db.Latest("XSpim")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Class != "io" {
		t.Errorf("XSpim stored class = %s, want io", rec.Class)
	}
}

func TestRunClassifiesTraceCSV(t *testing.T) {
	// Build a real trace file via the testbed.
	entry, err := workload.Find("PostMark")
	if err != nil {
		t.Fatal(err)
	}
	res, err := testbed.ProfileEntry(entry, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "postmark.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 1, "", "", 0, 0, "", ""); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
}

func TestRunRejectsUnknownApp(t *testing.T) {
	if err := run("NoSuchApp", "", 1, "", "", 0, 0, "", ""); err == nil {
		t.Error("unknown app: want error")
	}
}

func TestRunRejectsMissingTrace(t *testing.T) {
	if err := run("", "/does/not/exist.csv", 1, "", "", 0, 0, "", ""); err == nil {
		t.Error("missing trace file: want error")
	}
}

func TestRunSaveAndReuseModel(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	// Train once and save.
	if err := run("XSpim", "", 1, "", "", 0, 0, "", modelPath); err != nil {
		t.Fatalf("train+save: %v", err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	// Classify again reusing the saved model (no retraining).
	if err := run("XSpim", "", 1, "", "", 0, 0, modelPath, ""); err != nil {
		t.Fatalf("reuse model: %v", err)
	}
	if err := run("XSpim", "", 1, "", "", 0, 0, filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Error("missing model file: want error")
	}
}
