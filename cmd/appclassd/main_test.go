package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/appstore"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/wal"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if cfg.addr != ":8080" || cfg.ttl != 5*time.Minute || cfg.poll != 5*time.Second || cfg.seed != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-addr", "127.0.0.1:0", "-ttl", "30s", "-shards", "4", "-gmetad", "http://x/", "-db", "a.json"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.ttl != 30*time.Second || cfg.shards != 4 || cfg.gmetad != "http://x/" || cfg.dbPath != "a.json" {
		t.Errorf("parsed = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag: want error")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("positional argument: want error")
	}
}

func TestParseAppdbFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-db", "appdb", "-dashboard", "-appdb-max-bytes", "1048576", "-appdb-retain", "720h"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !cfg.dashboard || cfg.appdbMaxBytes != 1<<20 || cfg.appdbRetain != 720*time.Hour {
		t.Errorf("parsed = %+v", cfg)
	}
	for _, args := range [][]string{
		{"-appdb-max-bytes", "1048576"},
		{"-appdb-retain", "720h"},
		{"-db", "appdb", "-appdb-max-bytes", "-1"},
		{"-db", "appdb", "-appdb-retain", "-1h"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v: want error", args)
		}
	}
}

func TestRunRejectsMissingModel(t *testing.T) {
	cfg, err := parseFlags([]string{"-model", "/does/not/exist.json"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), cfg, nil); err == nil {
		t.Error("missing model file: want error")
	}
}

// savedModel trains the classifier once per test binary and serializes
// it, so the daemon tests boot from -model instead of retraining.
var (
	modelOnce  sync.Once
	modelBytes []byte
	modelErr   error
)

func savedModel(t *testing.T) string {
	t.Helper()
	modelOnce.Do(func() {
		svc, err := core.NewService(core.Options{Seed: 1})
		if err != nil {
			modelErr = err
			return
		}
		var buf bytes.Buffer
		if err := svc.Classifier().Save(&buf); err != nil {
			modelErr = err
			return
		}
		modelBytes = buf.Bytes()
	})
	if modelErr != nil {
		t.Fatalf("train model: %v", modelErr)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, modelBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunStartupShutdown boots the daemon on an ephemeral port from a
// pre-trained model, ingests one snapshot, shuts down via context
// cancellation, and expects the flushed session in the database store.
func TestRunStartupShutdown(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "appdb")
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-model", savedModel(t), "-db", dbPath})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"snapshots": []any{map[string]any{
		"vm":     "smoke-vm",
		"time_s": 0,
		"values": make([]float64, metrics.DefaultSchema().Len()),
	}}})
	resp, err = http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, raw.String())
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}

	db, err := appdb.Open(dbPath, appstore.Options{})
	if err != nil {
		t.Fatalf("db not written on shutdown: %v", err)
	}
	defer db.Close()
	rec, err := db.Latest("smoke-vm")
	if err != nil {
		t.Fatalf("flushed session missing from db: %v", err)
	}
	if rec.FinalizedAt == 0 {
		t.Error("flushed session has no finalize stamp")
	}
}

// TestRunLegacyDBMigration points -db at a legacy whole-file JSON
// database and expects the daemon to convert it in place and keep its
// records queryable.
func TestRunLegacyDBMigration(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "appdb.json")
	legacy := appdb.New()
	if err := legacy.Put(appdb.Record{
		App:           "historic",
		Class:         appclass.CPU,
		Composition:   map[appclass.Class]float64{appclass.CPU: 1},
		ExecutionTime: time.Minute,
		Samples:       12,
	}); err != nil {
		t.Fatal(err)
	}
	if err := legacy.SaveFile(dbPath); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-model", savedModel(t), "-db", dbPath})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get("http://" + addr + "/v1/runs?app=historic")
	if err != nil {
		t.Fatalf("runs: %v", err)
	}
	var runs struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || runs.Count != 1 {
		t.Fatalf("migrated record not served: status %d count %d", resp.StatusCode, runs.Count)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

// TestRunDashboard boots the daemon with -dashboard, finalizes one
// session, and fetches the dashboard page plus the paginated run query
// it is built on — the smoke path CI exercises.
func TestRunDashboard(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-model", savedModel(t),
		"-db", filepath.Join(t.TempDir(), "appdb"), "-dashboard",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	body, _ := json.Marshal(map[string]any{"snapshots": []any{map[string]any{
		"vm":     "dash-vm",
		"time_s": 0,
		"values": make([]float64, metrics.DefaultSchema().Len()),
	}}})
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/vms/dash-vm/finish", "application/json", nil)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/dashboard/")
	if err != nil {
		t.Fatalf("dashboard: %v", err)
	}
	page := new(bytes.Buffer)
	page.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("dashboard = %d", resp.StatusCode)
	}
	if !bytes.Contains(page.Bytes(), []byte(`id="sessions"`)) {
		t.Error("dashboard page missing the sessions table")
	}

	resp, err = http.Get(base + "/v1/runs?limit=10")
	if err != nil {
		t.Fatalf("runs: %v", err)
	}
	var runs struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || runs.Count != 1 {
		t.Fatalf("runs query: status %d count %d, want 200/1", resp.StatusCode, runs.Count)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

func TestRunFailsOnBusyPort(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg, err := parseFlags([]string{"-addr", l.Addr().String(), "-model", savedModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), cfg, nil); err == nil {
		t.Error("busy port: want error")
	}
}

func TestParsePlacementFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-hosts", "a:2,b:4", "-rates", "10,8,6,4,1", "-drift", "0.4"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.hosts != "a:2,b:4" || cfg.rates != "10,8,6,4,1" || cfg.drift != 0.4 {
		t.Errorf("parsed = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-rates", "1,1,1,1,0"}); err == nil {
		t.Error("-rates without -hosts: want error")
	}
}

func TestParseHosts(t *testing.T) {
	hosts, err := parseHosts(" hostA:4 , hostB:2 ")
	if err != nil {
		t.Fatalf("parseHosts: %v", err)
	}
	want := []placement.HostSpec{{Name: "hostA", Slots: 4}, {Name: "hostB", Slots: 2}}
	if len(hosts) != 2 || hosts[0] != want[0] || hosts[1] != want[1] {
		t.Errorf("hosts = %+v, want %+v", hosts, want)
	}
	for _, bad := range []string{"", "noslots", "h:x", ","} {
		if _, err := parseHosts(bad); err == nil {
			t.Errorf("parseHosts(%q): want error", bad)
		}
	}
}

func TestParseRates(t *testing.T) {
	r, err := parseRates("10, 8, 6, 4, 1")
	if err != nil {
		t.Fatalf("parseRates: %v", err)
	}
	if r.CPU != 10 || r.Mem != 8 || r.IO != 6 || r.Net != 4 || r.Idle != 1 {
		t.Errorf("rates = %+v", r)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,x"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q): want error", bad)
		}
	}
}

// TestRunWithPlacement boots the daemon with a host inventory and
// exercises the placement API end to end over TCP.
func TestRunWithPlacement(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-model", savedModel(t),
		"-hosts", "rack1:2,rack2:2", "-rates", "10,8,6,4,1",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/placements", "application/json",
		bytes.NewReader([]byte(`{"app":"newcomer"}`)))
	if err != nil {
		t.Fatalf("placement: %v", err)
	}
	var d struct {
		Host   string `json:"host"`
		Source string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("placement = %d", resp.StatusCode)
	}
	if d.Host != "rack1" && d.Host != "rack2" {
		t.Errorf("placed on %q, want a configured host", d.Host)
	}
	if d.Source != "prior" {
		t.Errorf("source = %q, want prior for an unseen app", d.Source)
	}

	resp, err = http.Get(base + "/v1/hosts")
	if err != nil {
		t.Fatalf("hosts: %v", err)
	}
	var hosts struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hosts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hosts.Count != 2 {
		t.Errorf("hosts count = %d, want 2", hosts.Count)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

func TestParseJournalFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-journal-dir", "/tmp/j", "-fsync", "always", "-fsync-interval", "2s",
		"-checkpoint-every", "10s", "-journal-segment-bytes", "1024", "-journal-max-bytes", "4096",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.journalDir != "/tmp/j" || cfg.fsync != "always" || cfg.fsyncInterval != 2*time.Second ||
		cfg.checkpointEvery != 10*time.Second || cfg.journalSegBytes != 1024 || cfg.journalMaxBytes != 4096 {
		t.Errorf("parsed = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-journal-dir", "/tmp/j", "-fsync", "sometimes"}); err == nil {
		t.Error("bad fsync policy: want error")
	}
	for _, args := range [][]string{
		{"-fsync", "always"},
		{"-checkpoint-every", "10s"},
		{"-journal-max-bytes", "4096"},
		{"-fsync-group-commit", "-fsync", "always"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v without -journal-dir: want error", args)
		}
	}
}

func TestParseGroupCommitFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-journal-dir", "/tmp/j", "-fsync", "always",
		"-fsync-group-commit", "-fsync-window", "200us",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !cfg.fsyncGroup || cfg.fsyncWindow != 200*time.Microsecond {
		t.Errorf("parsed = %+v", cfg)
	}
	for _, args := range [][]string{
		{"-journal-dir", "/tmp/j", "-fsync-group-commit"},                      // default fsync is interval
		{"-journal-dir", "/tmp/j", "-fsync", "never", "-fsync-group-commit"},   // wrong policy
		{"-journal-dir", "/tmp/j", "-fsync", "always", "-fsync-window", "1ms"}, // window without group commit
		{"-journal-dir", "/tmp/j", "-fsync", "always", "-fsync-group-commit", "-fsync-window", "-1ms"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v: want error", args)
		}
	}
}

func TestParseBinaryIngestFlag(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !cfg.binary {
		t.Error("binary ingest should default on")
	}
	cfg, err = parseFlags([]string{"-ingest-binary=false"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.binary {
		t.Error("-ingest-binary=false should disable binary ingest")
	}
}

func TestParseResilienceFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-gmetad", "http://gm:8651/", "-poll-backoff-max", "2m",
		"-breaker-failures", "3", "-breaker-open-for", "45s",
		"-max-inflight-bytes", "1048576", "-max-inflight-requests", "32",
		"-ingest-timeout", "2s",
		"-journal-dir", "/tmp/j", "-degraded-on-wal-error",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.pollBackoffMax != 2*time.Minute || cfg.breakerFailures != 3 || cfg.breakerOpenFor != 45*time.Second {
		t.Errorf("poll resilience flags = %+v", cfg)
	}
	if cfg.maxInflightB != 1<<20 || cfg.maxInflightReq != 32 || cfg.ingestTimeout != 2*time.Second {
		t.Errorf("admission flags = %+v", cfg)
	}
	if !cfg.degradeOnWALErr {
		t.Error("degraded-on-wal-error not parsed")
	}
	for _, args := range [][]string{
		{"-poll-backoff-max", "2m"},
		{"-breaker-failures", "3"},
		{"-breaker-open-for", "45s"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%v without -gmetad: want error", args)
		}
	}
	if _, err := parseFlags([]string{"-degraded-on-wal-error"}); err == nil {
		t.Error("-degraded-on-wal-error without -journal-dir: want error")
	}
}

// TestRunWithJournal boots the daemon journaled, ingests, and shuts
// down cleanly: the journal directory must hold a segment and a final
// checkpoint with no live sessions.
func TestRunWithJournal(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-model", savedModel(t),
		"-journal-dir", jdir, "-fsync", "never",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	body, _ := json.Marshal(map[string]any{"snapshots": []any{map[string]any{
		"vm":     "journal-vm",
		"time_s": 0,
		"values": make([]float64, metrics.DefaultSchema().Len()),
	}}})
	resp, err := http.Post("http://"+addr+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}

	segs, err := filepath.Glob(filepath.Join(jdir, "journal-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s (err %v)", jdir, err)
	}
	cp, err := wal.LatestCheckpoint(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("clean shutdown wrote no checkpoint")
	}
}
