// Command appclassd is the application classification daemon: a
// long-running HTTP service that concurrently classifies metric
// streams from many VMs against one trained classification center.
// Snapshots arrive over the push API (POST /v1/ingest) or by polling a
// gmetad aggregator (-gmetad); per-VM state and cluster-wide class
// counts are served from /v1/vms and /v1/classes; sessions are
// finalized into an application-database file on explicit finish,
// idle-TTL expiry, or shutdown.
//
// Usage:
//
//	appclassd -addr :8080 -db appdb.json
//	appclassd -model model.json -gmetad http://gmetad:8651/ -poll 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/appdb"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
)

// config is the daemon's parsed command line.
type config struct {
	addr   string
	model  string
	dbPath string
	gmetad string
	poll   time.Duration
	ttl    time.Duration
	sweep  time.Duration
	shards int
	seed   int64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("appclassd", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.model, "model", "", "load a trained classifier from this JSON file instead of training")
	fs.StringVar(&cfg.dbPath, "db", "", "application database JSON file (loaded if present, saved on shutdown)")
	fs.StringVar(&cfg.gmetad, "gmetad", "", "poll this gmetad URL for cluster state (pull mode)")
	fs.DurationVar(&cfg.poll, "poll", 5*time.Second, "gmetad poll interval")
	fs.DurationVar(&cfg.ttl, "ttl", 5*time.Minute, "idle session TTL before eviction to the database")
	fs.DurationVar(&cfg.sweep, "sweep", 0, "eviction sweep interval (default ttl/4)")
	fs.IntVar(&cfg.shards, "shards", 0, "session registry shard count (default 16)")
	fs.Int64Var(&cfg.seed, "seed", 1, "simulation seed when training (no -model)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

// run starts the daemon and blocks until ctx is cancelled or serving
// fails. If ready is non-nil it receives the bound listen address once
// the daemon accepts connections.
func run(ctx context.Context, cfg config, ready chan<- string) error {
	var cl *classify.Classifier
	if cfg.model != "" {
		f, err := os.Open(cfg.model)
		if err != nil {
			return err
		}
		cl, err = classify.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("appclassd: loaded classifier from %s", cfg.model)
	} else {
		log.Printf("appclassd: training classifier on the simulated testbed (seed %d)", cfg.seed)
		svc, err := core.NewService(core.Options{Seed: cfg.seed})
		if err != nil {
			return err
		}
		cl = svc.Classifier()
	}

	db := appdb.New()
	if cfg.dbPath != "" {
		if _, err := os.Stat(cfg.dbPath); err == nil {
			db, err = appdb.LoadFile(cfg.dbPath)
			if err != nil {
				return err
			}
			log.Printf("appclassd: loaded %d record(s) from %s", db.Len(), cfg.dbPath)
		}
	}

	srv, err := server.New(server.Config{
		Classifier:    cl,
		Schema:        metrics.DefaultSchema(),
		DB:            db,
		IdleTTL:       cfg.ttl,
		SweepInterval: cfg.sweep,
		Shards:        cfg.shards,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("appclassd: listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv.StartJanitor()
	if cfg.gmetad != "" {
		if err := srv.StartPoller(server.PollConfig{URL: cfg.gmetad, Interval: cfg.poll}); err != nil {
			ln.Close()
			return err
		}
		log.Printf("appclassd: polling %s every %v", cfg.gmetad, cfg.poll)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil {
		return err
	}
	if cfg.dbPath != "" {
		if err := db.SaveFile(cfg.dbPath); err != nil {
			return err
		}
		log.Printf("appclassd: saved %d record(s) to %s", db.Len(), cfg.dbPath)
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintf(os.Stderr, "appclassd: %v\n", err)
		os.Exit(1)
	}
}
