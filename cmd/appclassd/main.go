// Command appclassd is the application classification daemon: a
// long-running HTTP service that concurrently classifies metric
// streams from many VMs against one trained classification center.
// Snapshots arrive over the push API (POST /v1/ingest) or by polling a
// gmetad aggregator (-gmetad); per-VM state and cluster-wide class
// counts are served from /v1/vms and /v1/classes; sessions are
// finalized into the application-database store (-db, a log-structured
// segment directory; legacy JSON files are converted in place) on
// explicit finish, idle-TTL expiry, or shutdown. With -dashboard the
// daemon serves an embedded control-plane dashboard at /dashboard/.
//
// With -hosts the daemon also runs the class-aware placement service:
// POST /v1/placements assigns applications to hosts using live
// classifications, appdb history, and the complementary-class scoring
// heuristic; /v1/hosts exposes the inventory and per-class load
// vectors.
//
// With -journal-dir the daemon journals every accepted batch to an
// append-only write-ahead log before classifying it and checkpoints
// live sessions periodically; after a crash it recovers sessions from
// the latest checkpoint plus the journal tail before accepting traffic.
//
// Usage:
//
//	appclassd -addr :8080 -db appdb -dashboard
//	appclassd -model model.json -gmetad http://gmetad:8651/ -poll 5s
//	appclassd -db appdb -appdb-max-bytes 1073741824 -appdb-retain 720h
//	appclassd -db appdb -hosts hostA:4,hostB:4 -rates 10,8,6,4,1
//	appclassd -journal-dir /var/lib/appclassd/journal -fsync interval -checkpoint-every 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/appdb"
	"repro/internal/appstore"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/server"
	"repro/internal/wal"
)

// config is the daemon's parsed command line.
type config struct {
	addr   string
	model  string
	dbPath string
	gmetad string
	poll   time.Duration
	ttl    time.Duration
	sweep  time.Duration
	shards int
	seed   int64
	hosts  string
	rates  string
	drift  float64
	pprof  bool
	binary bool

	dashboard     bool
	appdbMaxBytes int64
	appdbRetain   time.Duration

	journalDir      string
	fsync           string
	fsyncInterval   time.Duration
	fsyncGroup      bool
	fsyncWindow     time.Duration
	checkpointEvery time.Duration
	journalSegBytes int64
	journalMaxBytes int64

	pollBackoffMax  time.Duration
	breakerFailures int
	breakerOpenFor  time.Duration
	maxInflightB    int64
	maxInflightReq  int64
	ingestTimeout   time.Duration
	degradeOnWALErr bool

	segWindow    int
	segMinPhase  int
	segThreshold float64
	unknownSlack float64
	unknownQuant float64

	recoverForce   bool
	trainReservoir int
	modelDir       string
	retrainEvery   time.Duration
	retrainOut     string
	retrainMinRows int

	shutdownTimeout time.Duration
	scrubEvery      time.Duration
	storeMaintEvery time.Duration

	probationWindow   time.Duration
	probationUnknownX float64
	probationDisagree float64
	probationMinSnaps int64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("appclassd", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.model, "model", "", "load a trained classifier from this JSON file instead of training")
	fs.StringVar(&cfg.dbPath, "db", "", "application database store directory (a legacy JSON database file at the path is converted in place)")
	fs.StringVar(&cfg.gmetad, "gmetad", "", "poll this gmetad URL for cluster state (pull mode)")
	fs.DurationVar(&cfg.poll, "poll", 5*time.Second, "gmetad poll interval")
	fs.DurationVar(&cfg.ttl, "ttl", 5*time.Minute, "idle session TTL before eviction to the database")
	fs.DurationVar(&cfg.sweep, "sweep", 0, "eviction sweep interval (default ttl/4)")
	fs.IntVar(&cfg.shards, "shards", 0, "session registry shard count (default 16)")
	fs.Int64Var(&cfg.seed, "seed", 1, "simulation seed when training (no -model)")
	fs.StringVar(&cfg.hosts, "hosts", "", "placement host inventory as name:slots[,name:slots...] (enables /v1/placements)")
	fs.StringVar(&cfg.rates, "rates", "", "cost-model rates as cpu,mem,io,net,idle (default 1,1,1,1,0)")
	fs.Float64Var(&cfg.drift, "drift", 0, "migration-advisor drift threshold in [0,1] (default 0.25)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	fs.BoolVar(&cfg.binary, "ingest-binary", true, "serve the binary columnar ingest fast path at POST /v1/ingest.bin")
	fs.BoolVar(&cfg.dashboard, "dashboard", false, "serve the embedded control-plane dashboard at /dashboard/")
	fs.Int64Var(&cfg.appdbMaxBytes, "appdb-max-bytes", 0, "cap the application-database store at this total segment size, pruning the oldest runs (default unlimited)")
	fs.DurationVar(&cfg.appdbRetain, "appdb-retain", 0, "drop application-database runs finalized longer ago than this (default keep forever)")
	fs.StringVar(&cfg.journalDir, "journal-dir", "", "write-ahead journal directory (enables durable ingest and crash recovery)")
	fs.StringVar(&cfg.fsync, "fsync", "interval", "journal fsync policy: always, interval, or never")
	fs.DurationVar(&cfg.fsyncInterval, "fsync-interval", time.Second, "fsync cadence for -fsync interval")
	fs.BoolVar(&cfg.fsyncGroup, "fsync-group-commit", false, "coalesce concurrent -fsync always appends behind shared fsyncs (group commit)")
	fs.DurationVar(&cfg.fsyncWindow, "fsync-window", 0, "group-commit leader waits this long for stragglers before syncing (default 0)")
	fs.DurationVar(&cfg.checkpointEvery, "checkpoint-every", 30*time.Second, "session checkpoint cadence")
	fs.Int64Var(&cfg.journalSegBytes, "journal-segment-bytes", 0, "rotate journal segments at this size (default 8 MiB)")
	fs.Int64Var(&cfg.journalMaxBytes, "journal-max-bytes", 0, "cap closed journal segments at this total size, dropping the oldest (default unlimited)")
	fs.DurationVar(&cfg.pollBackoffMax, "poll-backoff-max", 0, "cap exponential poll backoff after consecutive gmetad failures (default 1m)")
	fs.IntVar(&cfg.breakerFailures, "breaker-failures", 0, "consecutive gmetad failures that open the poll circuit breaker (default 5)")
	fs.DurationVar(&cfg.breakerOpenFor, "breaker-open-for", 0, "how long an open poll breaker skips gmetad before a half-open probe (default 30s)")
	fs.Int64Var(&cfg.maxInflightB, "max-inflight-bytes", 0, "shed ingest once this many request-body bytes are in flight (default 64 MiB, negative disables)")
	fs.Int64Var(&cfg.maxInflightReq, "max-inflight-requests", 0, "shed ingest once this many requests are in flight (default 256, negative disables)")
	fs.DurationVar(&cfg.ingestTimeout, "ingest-timeout", 0, "abandon an ingest request that cannot finish within this deadline (default none)")
	fs.BoolVar(&cfg.degradeOnWALErr, "degraded-on-wal-error", false, "on persistent journal errors, continue ingest memory-only (degraded durability) instead of rejecting batches")
	fs.IntVar(&cfg.segWindow, "seg-window", 0, "phase segmentation half-window in snapshots (default 8, negative disables segmentation)")
	fs.IntVar(&cfg.segMinPhase, "seg-min-phase", 0, "minimum phase length in snapshots (default 5)")
	fs.Float64Var(&cfg.segThreshold, "seg-threshold", 0, "phase boundary distance threshold in fused feature space (default 1.0)")
	fs.Float64Var(&cfg.unknownSlack, "unknown-slack", 0, "open-set threshold slack over training self-distances (default 3.0, negative disables UNKNOWN verdicts)")
	fs.Float64Var(&cfg.unknownQuant, "unknown-quantile", 0, "training self-distance quantile for open-set calibration (default 0.99)")
	fs.BoolVar(&cfg.recoverForce, "recover-force", false, "recover past a checkpoint/journal model-hash mismatch by discarding the mismatching checkpoint and replaying the journal tail only")
	fs.IntVar(&cfg.trainReservoir, "train-reservoir", 0, "per-session reservoir of raw sample rows retained for online retraining (default 256, negative disables sampling)")
	fs.StringVar(&cfg.modelDir, "model-dir", "", "confine POST /v1/models artifact paths to this directory (default: paths taken as given)")
	fs.DurationVar(&cfg.retrainEvery, "retrain-every", 0, "refit a candidate model from labeled appdb sessions at this cadence and shadow-evaluate it (default off)")
	fs.StringVar(&cfg.retrainOut, "retrain-out", "", "persist each retrained model artifact to this path (atomic rename)")
	fs.IntVar(&cfg.retrainMinRows, "retrain-min-rows", 0, "minimum retained sample rows a class needs to join a retrain (default 8)")
	fs.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 10*time.Second, "bound graceful shutdown (HTTP drain, session flush, final checkpoint) to this long")
	fs.DurationVar(&cfg.scrubEvery, "scrub-every", 0, "verify one sealed journal segment and one closed appdb segment for latent corruption at this cadence, repairing damage (default off)")
	fs.DurationVar(&cfg.storeMaintEvery, "store-maint-every", 0, "compact the application-database store at this cadence (default off)")
	fs.DurationVar(&cfg.probationWindow, "probation-window", 0, "keep a freshly promoted model on probation this long, the displaced model shadow-guarding it; breaches auto-roll back (default off)")
	fs.Float64Var(&cfg.probationUnknownX, "probation-unknown-factor", 0, "breach probation when the new model's unknown rate reaches this multiple of the guard's (default 3)")
	fs.Float64Var(&cfg.probationDisagree, "probation-disagree-threshold", 0, "breach probation when the guard disagrees with this fraction of a class's votes (default 0.9)")
	fs.Int64Var(&cfg.probationMinSnaps, "probation-min-snapshots", 0, "snapshots the guard must see before the unknown-rate test can breach (default 50)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.hosts == "" && cfg.rates != "" {
		return config{}, fmt.Errorf("-rates requires -hosts")
	}
	if cfg.dbPath == "" {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "appdb-max-bytes", "appdb-retain":
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return config{}, fmt.Errorf("%s require(s) -db", strings.Join(set, ", "))
		}
	}
	if cfg.appdbMaxBytes < 0 || cfg.appdbRetain < 0 {
		return config{}, fmt.Errorf("-appdb-max-bytes and -appdb-retain must be non-negative")
	}
	if _, err := wal.ParsePolicy(cfg.fsync); err != nil {
		return config{}, err
	}
	if cfg.journalDir == "" {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "fsync", "fsync-interval", "fsync-group-commit", "fsync-window", "checkpoint-every", "journal-segment-bytes", "journal-max-bytes", "degraded-on-wal-error", "recover-force":
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return config{}, fmt.Errorf("%s require(s) -journal-dir", strings.Join(set, ", "))
		}
	}
	if cfg.fsyncGroup && cfg.fsync != "always" {
		return config{}, fmt.Errorf("-fsync-group-commit requires -fsync always, got -fsync %s", cfg.fsync)
	}
	if cfg.fsyncWindow != 0 && !cfg.fsyncGroup {
		return config{}, fmt.Errorf("-fsync-window requires -fsync-group-commit")
	}
	if cfg.fsyncWindow < 0 {
		return config{}, fmt.Errorf("-fsync-window must be non-negative, got %v", cfg.fsyncWindow)
	}
	if cfg.retrainEvery <= 0 {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "retrain-out", "retrain-min-rows":
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return config{}, fmt.Errorf("%s require(s) -retrain-every", strings.Join(set, ", "))
		}
	}
	if cfg.retrainEvery > 0 && cfg.trainReservoir < 0 {
		return config{}, fmt.Errorf("-retrain-every needs sampling; do not disable -train-reservoir")
	}
	if cfg.gmetad == "" {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "poll-backoff-max", "breaker-failures", "breaker-open-for":
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return config{}, fmt.Errorf("%s require(s) -gmetad", strings.Join(set, ", "))
		}
	}
	if cfg.shutdownTimeout <= 0 {
		return config{}, fmt.Errorf("-shutdown-timeout must be positive, got %v", cfg.shutdownTimeout)
	}
	if cfg.scrubEvery < 0 || cfg.storeMaintEvery < 0 || cfg.probationWindow < 0 {
		return config{}, fmt.Errorf("-scrub-every, -store-maint-every, and -probation-window must be non-negative")
	}
	if cfg.scrubEvery > 0 && cfg.journalDir == "" && cfg.dbPath == "" {
		return config{}, fmt.Errorf("-scrub-every needs something to scrub: set -journal-dir and/or -db")
	}
	if cfg.storeMaintEvery > 0 && cfg.dbPath == "" {
		return config{}, fmt.Errorf("-store-maint-every requires -db")
	}
	if cfg.probationWindow <= 0 {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "probation-unknown-factor", "probation-disagree-threshold", "probation-min-snapshots":
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return config{}, fmt.Errorf("%s require(s) -probation-window", strings.Join(set, ", "))
		}
	}
	if cfg.probationUnknownX < 0 || cfg.probationDisagree < 0 || cfg.probationDisagree > 1 || cfg.probationMinSnaps < 0 {
		return config{}, fmt.Errorf("-probation-unknown-factor and -probation-min-snapshots must be non-negative and -probation-disagree-threshold in [0,1]")
	}
	return cfg, nil
}

// parseHosts parses a "name:slots,name:slots" inventory spec.
func parseHosts(spec string) ([]placement.HostSpec, error) {
	var out []placement.HostSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, slotsStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("host %q: want name:slots", part)
		}
		slots, err := strconv.Atoi(strings.TrimSpace(slotsStr))
		if err != nil {
			return nil, fmt.Errorf("host %q: %w", part, err)
		}
		out = append(out, placement.HostSpec{Name: strings.TrimSpace(name), Slots: slots})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty host inventory %q", spec)
	}
	return out, nil
}

// parseRates parses "cpu,mem,io,net,idle" unit prices (the α..ε of the
// paper's cost model).
func parseRates(spec string) (costmodel.Rates, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 5 {
		return costmodel.Rates{}, fmt.Errorf("rates must be 5 comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 5)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return costmodel.Rates{}, fmt.Errorf("rate %d: %w", i, err)
		}
		vals[i] = v
	}
	return costmodel.Rates{CPU: vals[0], Mem: vals[1], IO: vals[2], Net: vals[3], Idle: vals[4]}, nil
}

// run starts the daemon and blocks until ctx is cancelled or serving
// fails. If ready is non-nil it receives the bound listen address once
// the daemon accepts connections.
func run(ctx context.Context, cfg config, ready chan<- string) error {
	var cl *classify.Classifier
	if cfg.model != "" {
		f, err := os.Open(cfg.model)
		if err != nil {
			return err
		}
		cl, err = classify.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("appclassd: loaded classifier from %s", cfg.model)
	} else {
		log.Printf("appclassd: training classifier on the simulated testbed (seed %d)", cfg.seed)
		svc, err := core.NewService(core.Options{Seed: cfg.seed})
		if err != nil {
			return err
		}
		cl = svc.Classifier()
	}

	db := appdb.New()
	if cfg.dbPath != "" {
		// -db opens the log-structured segmented store; a legacy JSON
		// database file at the path is converted in place on first open.
		var err error
		db, err = appdb.Open(cfg.dbPath, appstore.Options{
			MaxBytes:  cfg.appdbMaxBytes,
			RetainAge: cfg.appdbRetain,
			Logf:      log.Printf,
		})
		if err != nil {
			return err
		}
		defer db.Close()
		log.Printf("appclassd: application database at %s (%d record(s))", cfg.dbPath, db.Len())
	}

	var placer *placement.Service
	if cfg.hosts != "" {
		hosts, err := parseHosts(cfg.hosts)
		if err != nil {
			return err
		}
		var rates costmodel.Rates
		if cfg.rates != "" {
			if rates, err = parseRates(cfg.rates); err != nil {
				return err
			}
		}
		placer, err = placement.New(placement.Config{
			Hosts:          hosts,
			Rates:          rates,
			History:        db,
			DriftThreshold: cfg.drift,
		})
		if err != nil {
			return err
		}
		log.Printf("appclassd: placement service over %d host(s)", len(hosts))
	}

	var journal *wal.Journal
	if cfg.journalDir != "" {
		policy, err := wal.ParsePolicy(cfg.fsync)
		if err != nil {
			return err
		}
		journal, err = wal.Open(wal.Config{
			Dir:               cfg.journalDir,
			SegmentBytes:      cfg.journalSegBytes,
			MaxBytes:          cfg.journalMaxBytes,
			Fsync:             policy,
			FsyncEvery:        cfg.fsyncInterval,
			GroupCommit:       cfg.fsyncGroup,
			GroupCommitWindow: cfg.fsyncWindow,
			Logf:              log.Printf,
		})
		if err != nil {
			return err
		}
		defer journal.Close()
		mode := policy.String()
		if cfg.fsyncGroup {
			mode += " group-commit"
		}
		log.Printf("appclassd: journaling to %s (fsync %s)", cfg.journalDir, mode)
	}

	srv, err := server.New(server.Config{
		Classifier:                 cl,
		Schema:                     metrics.DefaultSchema(),
		DB:                         db,
		IdleTTL:                    cfg.ttl,
		SweepInterval:              cfg.sweep,
		Shards:                     cfg.shards,
		Placement:                  placer,
		Dashboard:                  cfg.dashboard,
		EnablePprof:                cfg.pprof,
		DisableBinaryIngest:        !cfg.binary,
		Journal:                    journal,
		CheckpointEvery:            cfg.checkpointEvery,
		MaxInflightBytes:           cfg.maxInflightB,
		MaxInflightRequests:        cfg.maxInflightReq,
		IngestTimeout:              cfg.ingestTimeout,
		DegradeOnWALError:          cfg.degradeOnWALErr,
		SegmentWindow:              cfg.segWindow,
		SegmentMinLen:              cfg.segMinPhase,
		SegmentThreshold:           cfg.segThreshold,
		UnknownSlack:               cfg.unknownSlack,
		UnknownQuantile:            cfg.unknownQuant,
		RecoverForce:               cfg.recoverForce,
		TrainReservoir:             cfg.trainReservoir,
		ModelDir:                   cfg.modelDir,
		RetrainEvery:               cfg.retrainEvery,
		RetrainOut:                 cfg.retrainOut,
		RetrainMinRows:             cfg.retrainMinRows,
		ScrubEvery:                 cfg.scrubEvery,
		StoreMaintEvery:            cfg.storeMaintEvery,
		ProbationWindow:            cfg.probationWindow,
		ProbationUnknownFactor:     cfg.probationUnknownX,
		ProbationDisagreeThreshold: cfg.probationDisagree,
		ProbationMinSnapshots:      cfg.probationMinSnaps,
		Logf:                       log.Printf,
	})
	if err != nil {
		return err
	}
	if journal != nil {
		// Recover before accepting traffic: checkpointed sessions come
		// back live, the journal tail replays into them.
		rs, err := srv.Recover()
		if err != nil {
			return err
		}
		if rs.Sessions > 0 || rs.Records > 0 {
			log.Printf("appclassd: recovered %d session(s), replayed %d snapshot(s), %d finalize(s)",
				rs.Sessions, rs.Snapshots, rs.Finalized)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("appclassd: listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv.StartJanitor()
	srv.StartCheckpointer()
	srv.StartRetrainer()
	srv.StartStoreMaint()
	srv.StartScrubber()
	srv.StartProbationWatcher()
	if cfg.retrainEvery > 0 {
		log.Printf("appclassd: retraining from %s every %v", cfg.dbPath, cfg.retrainEvery)
	}
	if cfg.scrubEvery > 0 {
		log.Printf("appclassd: scrubbing storage every %v", cfg.scrubEvery)
	}
	if cfg.probationWindow > 0 {
		log.Printf("appclassd: promoted models serve a %v probation under their displaced predecessor", cfg.probationWindow)
	}
	if cfg.gmetad != "" {
		if err := srv.StartPoller(server.PollConfig{
			URL:             cfg.gmetad,
			Interval:        cfg.poll,
			BackoffMax:      cfg.pollBackoffMax,
			BreakerFailures: cfg.breakerFailures,
			BreakerOpenFor:  cfg.breakerOpenFor,
		}); err != nil {
			ln.Close()
			return err
		}
		log.Printf("appclassd: polling %s every %v", cfg.gmetad, cfg.poll)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: drain HTTP, flush every session into the db,
	// write a final checkpoint, sync the journal. The deferred
	// journal.Close then rotates it shut.
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil {
		return err
	}
	if cfg.dbPath != "" {
		// Every finalize already hit the segment log; closing just syncs
		// the active segment (the deferred Close is then a no-op).
		if err := db.Close(); err != nil {
			return err
		}
		log.Printf("appclassd: application database closed with %d record(s)", db.Len())
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "appclassd: %v\n", err)
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Restore default signal handling so a second SIGTERM/SIGINT
		// force-exits instead of waiting out the graceful drain.
		stop()
		log.Printf("appclassd: shutting down (send the signal again to force exit)")
	}()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintf(os.Stderr, "appclassd: %v\n", err)
		os.Exit(1)
	}
}
