// Quickstart: train the application classifier on the five
// class-representative applications, profile one application in the
// simulated VM testbed, and print its class and class composition —
// the paper's core loop in a dozen lines.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// Train the classification center (PCA + 3-NN) on profiling runs of
	// SPECseis96 (CPU), PostMark (I/O), Pagebench (paging), Ettcp
	// (network) and an idle machine.
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Profile and classify an application the classifier has never
	// seen: the Bonnie file-system benchmark.
	entry, err := workload.Find("Bonnie")
	if err != nil {
		log.Fatal(err)
	}
	report, err := svc.ProfileAndClassify(entry, 7)
	if err != nil {
		log.Fatalf("classify: %v", err)
	}

	fmt.Printf("application:  %s\n", report.App)
	fmt.Printf("execution:    %v (%d snapshots at 5s)\n",
		report.Elapsed.Round(time.Second), report.Samples)
	fmt.Printf("class:        %s\n", report.Result.Class.Display())
	fmt.Println("composition:")
	for _, c := range appclass.All() {
		if f := report.Result.Composition[c]; f > 0 {
			fmt.Printf("  %-8s %6.2f%%\n", c.Display(), 100*f)
		}
	}

	// The run is now in the application database, ready for schedulers.
	rec, err := svc.DB().Latest("Bonnie")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database:     class=%s execution=%v\n",
		rec.Class, rec.ExecutionTime.Round(time.Second))
}
