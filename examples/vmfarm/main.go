// Vmfarm: the VMPlant + migration story around the classifier
// (Sections 1 and 2) — define application-specific VM execution
// environments as DAGs, clone them onto shared hosts, run a mixed batch,
// detect each VM's currently active stage with the classifier, and let
// the migration advisor fix same-class collisions the way a
// stage-aware load balancer would.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/vmm"
	"repro/internal/vmplant"
	"repro/internal/workload"
)

func main() {
	// 1. Define a VM execution environment as a configuration DAG and
	// register it with the plant.
	plan, err := vmplant.NewPlan("grid-node", []vmplant.Action{
		vmplant.WithMemory(256 * 1024),
		{Name: "mount-scratch", DependsOn: []string{"set-memory"}},
		vmplant.WithVCPUs(1),
		{Name: "stage-input", DependsOn: []string{"mount-scratch"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	plant := vmplant.NewPlant()
	if err := plant.Register(plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan %q validated; action order: %v\n", plan.Name(), plan.Order())

	// 2. Clone three VMs onto one shared host and give each a job — a
	// deliberately bad, class-colliding placement.
	cluster := vmm.NewCluster()
	host := vmm.NewHost(vmm.HostConfig{Name: "host1"})
	if err := cluster.AddHost(host); err != nil {
		log.Fatal(err)
	}
	vms := make([]*vmm.VM, 3)
	jobs := []func() (*workload.App, error){
		func() (*workload.App, error) {
			return workload.NewCH3D(300, workload.Config{Seed: 1})
		},
		func() (*workload.App, error) {
			return workload.NewSPECseis(workload.SPECseisSmall, workload.Config{Seed: 2})
		},
		func() (*workload.App, error) {
			return workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Seed: 3})
		},
	}
	for i := range vms {
		vm, err := plant.Clone("grid-node", host, "", int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		job, err := jobs[i]()
		if err != nil {
			log.Fatal(err)
		}
		vm.AddJob(job)
		vms[i] = vm
		fmt.Printf("cloned %s <- %s\n", vm.Name(), job.Name())
	}

	// 3. Train the classifier and watch each VM live through gmond.
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	bus := ganglia.NewBus()
	gm, err := ganglia.NewGmetad("farm", bus)
	if err != nil {
		log.Fatal(err)
	}
	for _, vm := range vms {
		agent, err := ganglia.NewGmond(vm, bus, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := agent.Start(cluster.Queue()); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.RunFor(90 * time.Second); err != nil {
		log.Fatal(err)
	}

	// 4. Classify each VM's current activity from the aggregator state.
	schema := metrics.DefaultSchema()
	placement := sched.Placement{}
	for _, vm := range vms {
		vals := make([]float64, schema.Len())
		for i, name := range schema.Names() {
			v, _, err := gm.Latest(vm.Name(), name)
			if err != nil {
				log.Fatal(err)
			}
			vals[i] = v
		}
		class, err := svc.Classifier().ClassifySnapshot(schema, vals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s current stage: %s\n", vm.Name(), class.Display())
		placement[vm.Name()] = []appclass.Class{class}
	}

	// 5. Two CPU stages collide on the host; the advisor proposes the
	// fix a stage-aware load balancer would execute.
	collidingDemo := sched.Placement{
		"host1-slotA": {placement["grid-node-1"][0], placement["grid-node-2"][0]},
		"host1-slotB": {placement["grid-node-3"][0]},
	}
	fmt.Printf("\nco-location collisions before: %d\n", sched.Collisions(collidingDemo))
	moves, err := sched.AdviseMigrations(collidingDemo, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range moves {
		if m.SwapWith != "" {
			fmt.Printf("advise: swap a %s job on %s with a %s job on %s\n", m.Class, m.From, m.SwapWith, m.To)
		} else {
			fmt.Printf("advise: migrate a %s job from %s to %s\n", m.Class, m.From, m.To)
		}
	}
	after, err := sched.Apply(collidingDemo, moves)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-location collisions after:  %d\n", sched.Collisions(after))
}
