// Multistage: classify an interactive VMD session snapshot by snapshot
// and segment it into execution stages (think time, file upload, GUI
// interaction over VNC) — the paper's motivation for identifying the
// stages of long-running applications so schedulers can react to stage
// changes (e.g. by migrating the VM).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	entry, err := workload.Find("VMD")
	if err != nil {
		log.Fatal(err)
	}
	run, err := testbed.ProfileEntry(entry, 11)
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	result, err := svc.Classifier().ClassifyTrace(run.Trace)
	if err != nil {
		log.Fatalf("classify: %v", err)
	}

	// Segment the classified run: 5-snapshot majority smoothing,
	// minimum stage length 3 snapshots (15 s).
	stages, err := classify.DetectStages(run.Trace, result, 5, 3)
	if err != nil {
		log.Fatalf("stages: %v", err)
	}

	fmt.Printf("VMD session: %d snapshots, overall class %s\n",
		run.Trace.Len(), result.Class.Display())
	fmt.Println("detected execution stages:")
	for i, st := range stages {
		fmt.Printf("  %d. %-8s %6v -> %6v (%d snapshots, %v)\n",
			i+1, st.Class.Display(),
			st.Start.Round(time.Second), st.End.Round(time.Second),
			st.Snapshots, st.Duration().Round(time.Second))
	}
	fmt.Printf("timeline: %s\n", classify.StageSummary(stages))

	// Compare against the ground-truth phases the workload executed.
	fmt.Println("ground-truth phases of the session:")
	for _, pc := range run.App.PhaseChanges {
		fmt.Printf("  %6v %s\n", pc.At.Round(time.Second), pc.Phase)
	}
}
