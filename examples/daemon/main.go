// Daemon: run appclassd in-process and drive it over its HTTP API —
// train the classification center, start the daemon on an ephemeral
// port, replay a profiled trace through POST /v1/ingest in batches the
// way a monitoring relay would, watch the running composition via
// GET /v1/vms/{name}, then finish the session and show the record the
// daemon flushed into the application database. A second act points
// the daemon's poller at a deliberately flaky gmetad (30% injected
// fetch errors plus a short blackout, via internal/faultinject) and
// shows the breaker, backoff, and sample-gap accounting riding it out.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	srv, err := server.New(server.Config{
		Classifier: svc.Classifier(),
		Schema:     metrics.DefaultSchema(),
		DB:         svc.DB(),
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("appclassd serving on %s\n", base)

	// Profile a multi-phase run and replay it over the push API.
	entry, err := workload.Find("Stream")
	if err != nil {
		log.Fatal(err)
	}
	run, err := testbed.ProfileEntry(entry, 13)
	if err != nil {
		log.Fatalf("profile: %v", err)
	}
	trace := run.Trace
	const vm, batch = "stream-vm", 25
	fmt.Printf("replaying %d snapshots of %s as %s in batches of %d\n",
		trace.Len(), entry.Name, vm, batch)
	for start := 0; start < trace.Len(); start += batch {
		end := start + batch
		if end > trace.Len() {
			end = trace.Len()
		}
		snaps := make([]map[string]any, 0, end-start)
		for i := start; i < end; i++ {
			s := trace.At(i)
			snaps = append(snaps, map[string]any{"vm": vm, "time_s": s.Time.Seconds(), "values": s.Values})
		}
		body, _ := json.Marshal(map[string]any{"snapshots": snaps})
		resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("ingest batch at %d: status %d", start, resp.StatusCode)
		}
	}

	// Query the live session.
	resp, err := http.Get(base + "/v1/vms/" + vm)
	if err != nil {
		log.Fatal(err)
	}
	var detail struct {
		Class       string             `json:"class"`
		Snapshots   int                `json:"snapshots"`
		Drift       float64            `json:"drift"`
		Composition map[string]float64 `json:"composition"`
		Stages      []struct {
			Class     string `json:"class"`
			Snapshots int    `json:"snapshots"`
		} `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("live session: class=%s after %d snapshots, drift=%.2f\n",
		detail.Class, detail.Snapshots, detail.Drift)
	fmt.Print("composition: ")
	for _, c := range appclass.Strings() {
		if f := detail.Composition[c]; f > 0 {
			fmt.Printf("%s=%.1f%% ", c, 100*f)
		}
	}
	fmt.Printf("\nstages: ")
	for _, st := range detail.Stages {
		fmt.Printf("%s[%d] ", st.Class, st.Snapshots)
	}
	fmt.Println()

	// Finish the session: the daemon finalizes it into the application
	// database and frees the slot.
	resp, err = http.Post(base+"/v1/vms/"+vm+"/finish", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var fin struct {
		Class         string  `json:"class"`
		ExecutionSecs float64 `json:"execution_s"`
		Samples       int     `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fin); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("finished: class=%s samples=%d execution=%.0fs\n", fin.Class, fin.Samples, fin.ExecutionSecs)

	rec, err := svc.DB().Latest(vm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application DB record: %s class=%s samples=%d\n", rec.App, rec.Class, rec.Samples)

	// Act 2: resilient polling against a flaky gmetad. A local
	// aggregator serves the trace one sample per fetch; its transport is
	// wrapped in the fault injector, so fetches fail at a 30% rate and
	// the source goes completely dark for a stretch. The daemon's
	// breaker and backoff absorb the faults while the affected session
	// records explicit sample gaps.
	fmt.Println("\n--- flaky gmetad demo ---")
	names := metrics.DefaultNames()
	var gmMu sync.Mutex
	gmIdx := 0
	gmHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gmMu.Lock()
		defer gmMu.Unlock()
		bus := ganglia.NewBus()
		gm, err := ganglia.NewGmetad("demo", bus)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		sn := trace.At(gmIdx % trace.Len())
		gmIdx++
		for j, name := range names {
			bus.Announce(ganglia.Announcement{Node: "polled-vm", Metric: name, Value: sn.Values[j], At: sn.Time})
		}
		w.Header().Set("Content-Type", "application/xml")
		_ = gm.WriteXML(w, sn.Time+time.Second)
	})
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gln.Close()
	go func() { _ = http.Serve(gln, gmHandler) }()

	rt := faultinject.NewRoundTripper(nil, 99)
	rt.SetErrorRate(0.3)
	if err := srv.StartPoller(server.PollConfig{
		URL:             "http://" + gln.Addr().String(),
		Interval:        50 * time.Millisecond,
		Client:          &http.Client{Transport: rt},
		FetchTimeout:    time.Second,
		BackoffMax:      200 * time.Millisecond,
		BreakerFailures: 3,
		BreakerOpenFor:  250 * time.Millisecond,
	}); err != nil {
		log.Fatalf("start poller: %v", err)
	}
	fmt.Println("polling a gmetad with 30% injected fetch errors...")
	time.Sleep(time.Second)
	fmt.Println("blackout: gmetad goes dark for 600ms (watch the breaker open)")
	rt.SetBlackout(true)
	time.Sleep(600 * time.Millisecond)
	rt.SetBlackout(false)
	time.Sleep(time.Second)
	fmt.Printf("injector: %d fetches seen, %d failed by injection\n", rt.Requests(), rt.Injected())

	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "appclassd_poll") || strings.HasPrefix(line, "appclassd_sample_gap") {
			fmt.Println(line)
		}
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/vms/polled-vm")
	if err != nil {
		log.Fatal(err)
	}
	var polled struct {
		Class      string  `json:"class"`
		Snapshots  int     `json:"snapshots"`
		Gaps       int     `json:"gaps"`
		GapSeconds float64 `json:"gap_s"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&polled); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("polled session: class=%s snapshots=%d gaps=%d gap_time=%.2fs — composition is flagged as partial coverage\n",
		polled.Class, polled.Snapshots, polled.Gaps, polled.GapSeconds)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	fmt.Println("daemon shut down cleanly")
}
