// Costsched: the class-aware resource management loop of Sections 4.4
// and 5.2 end to end — learn application classes over historical runs,
// price each application with the provider's per-resource rates, and
// let the class-aware scheduler place a batch of jobs so that classes
// mix on every VM, then compare its throughput against the
// class-oblivious expectation.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// 1. Learn classes over historical runs of the three job types the
	// scheduler will place.
	for _, app := range []string{"SPECseis96_C", "PostMark", "NetPIPE"} {
		entry, err := workload.Find(app)
		if err != nil {
			log.Fatal(err)
		}
		report, err := svc.ProfileAndClassify(entry, 5)
		if err != nil {
			log.Fatalf("profile %s: %v", app, err)
		}
		fmt.Printf("learned: %-13s -> %s\n", app, report.Result.Class.Display())
	}

	// 2. Price the applications with the provider's rates
	// (UnitApplicationCost = α·cpu% + β·mem% + γ·io% + δ·net% + ε·idle%).
	rates := costmodel.Rates{CPU: 1.00, Mem: 0.80, IO: 0.60, Net: 0.40, Idle: 0.05}
	fmt.Println("\ncost quotes (provider rates: cpu=1.00 mem=0.80 io=0.60 net=0.40 idle=0.05):")
	for _, app := range []string{"SPECseis96_C", "PostMark", "NetPIPE"} {
		q, err := svc.Quote(app, rates)
		if err != nil {
			log.Fatalf("quote %s: %v", app, err)
		}
		fmt.Printf("  %-13s unit=%.3f/hour  run=%.4f\n", app, q.UnitCost, q.RunCost)
	}

	// 3. The class-aware scheduler spreads the classes across VMs.
	schedule, err := sched.ClassAwareSchedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclass-aware placement of {3xS, 3xP, 3xN} on 3 VMs: %s\n", schedule)

	// 4. Measure it against the class-oblivious expectation (Figure 4).
	f4, err := experiments.Figure4(experiments.DefaultSeed)
	if err != nil {
		log.Fatalf("figure 4: %v", err)
	}
	fmt.Printf("class-aware throughput:      %.0f jobs/day\n", f4.SPN.SystemThroughput)
	fmt.Printf("random-scheduler expectation: %.0f jobs/day\n", f4.WeightedAverage)
	fmt.Printf("improvement:                 %+.2f%% (paper: +22.11%%)\n", 100*f4.MarginOverAverage)
}
