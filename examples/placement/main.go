// Placement: drive the class-aware placement service in-process — seed
// an application database with historical runs of the paper's three
// workload classes, place nine arriving instances onto a three-host
// inventory with the complementary-class scoring heuristic, inspect the
// resulting per-host class mixes, and run the migration advisor against
// a live lookup that disagrees with the assumed composition.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/costmodel"
	"repro/internal/placement"
)

func main() {
	// History: one strongly-classed application per paper class, as the
	// daemon would have learned them from finished sessions.
	db := appdb.New()
	for _, r := range []appdb.Record{
		{App: "SPECseis96_C", Class: appclass.CPU,
			Composition:   map[appclass.Class]float64{appclass.CPU: 0.9, appclass.Idle: 0.1},
			ExecutionTime: 10 * time.Minute, Samples: 120},
		{App: "PostMark", Class: appclass.IO,
			Composition:   map[appclass.Class]float64{appclass.IO: 0.8, appclass.Idle: 0.2},
			ExecutionTime: 5 * time.Minute, Samples: 60},
		{App: "NetPIPE", Class: appclass.Net,
			Composition:   map[appclass.Class]float64{appclass.Net: 0.85, appclass.Idle: 0.15},
			ExecutionTime: 4 * time.Minute, Samples: 48},
	} {
		if err := db.Put(r); err != nil {
			log.Fatal(err)
		}
	}

	svc, err := placement.New(placement.Config{
		Hosts: []placement.HostSpec{
			{Name: "hostA", Slots: 3}, {Name: "hostB", Slots: 3}, {Name: "hostC", Slots: 3},
		},
		Rates:   costmodel.Rates{CPU: 10, Mem: 8, IO: 6, Net: 4, Idle: 1},
		History: db,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Nine instances arrive interleaved — the Figure 4 workload mix. A
	// round-robin scheduler would stack one class per host; the scoring
	// heuristic co-locates complementary classes instead.
	fmt.Println("placing 3×SPECseis96_C, 3×PostMark, 3×NetPIPE (interleaved arrivals):")
	for round := 0; round < 3; round++ {
		for _, app := range []string{"SPECseis96_C", "PostMark", "NetPIPE"} {
			d, err := svc.Place(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s class=%-4s source=%-8s -> %s (score %+.3f)\n",
				d.App, d.Class, d.Source, d.Host, d.Score)
		}
	}

	fmt.Println("\nfinal inventory (every host holds one job of each class):")
	for _, h := range svc.Hosts() {
		fmt.Printf("  %-6s %d/%d slots, load:", h.Name, h.Used, h.Slots)
		for _, c := range appclass.All() {
			if f := h.Load[c]; f > 0 {
				fmt.Printf(" %s=%.2f", c, f)
			}
		}
		fmt.Println()
	}

	// The advisor compares each host's assumed class mix against live
	// classifications. Pretend every PostMark instance turned out to be
	// CPU-bound — its hosts drift away from the mix the placements
	// assumed.
	svc.SetLive(func(app string) (map[appclass.Class]float64, bool) {
		if app == "PostMark" {
			return map[appclass.Class]float64{appclass.CPU: 1}, true
		}
		return nil, false
	})
	fmt.Println("\nmigration advice after PostMark turns out CPU-bound:")
	advice := svc.Advise()
	if len(advice) == 0 {
		fmt.Println("  (no host above the drift threshold)")
	}
	for _, a := range advice {
		fmt.Printf("  %s drift=%.2f", a.Host, a.Drift)
		for _, app := range a.Apps {
			if len(app.Live) > 0 {
				fmt.Printf("  [%s assumed=%s realized=%s]", app.App, app.Assumed, app.Realized)
			}
		}
		fmt.Println()
	}
}
