// Onlineclass: stream a live application's snapshots through the online
// classifier — the paper's Section 5.3 observes that the ~15 ms
// per-sample cost makes online training feasible; this example
// demonstrates the streaming half: per-snapshot classification, a
// running class composition, and a drift score that tells the operator
// when the metric distribution has left the training regime.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/profiler"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	online, err := classify.NewOnline(svc.Classifier(), metrics.DefaultSchema())
	if err != nil {
		log.Fatal(err)
	}

	// Profile a Stream run (alternating heavy I/O and paging) and
	// replay its snapshots as a live feed.
	entry, err := workload.Find("Stream")
	if err != nil {
		log.Fatal(err)
	}
	run, err := testbed.ProfileEntry(entry, 13)
	if err != nil {
		log.Fatalf("profile: %v", err)
	}

	fmt.Printf("streaming %d snapshots of %s through the online classifier:\n",
		run.Trace.Len(), entry.Name)
	for i := 0; i < run.Trace.Len(); i++ {
		snap := run.Trace.At(i)
		class, err := online.Observe(snap)
		if err != nil {
			log.Fatalf("observe: %v", err)
		}
		// Report once per minute of simulated time.
		if (i+1)%12 == 0 || i == run.Trace.Len()-1 {
			comp := online.Composition()
			fmt.Printf("  t=%-6v last=%-5s running: io=%4.0f%% mem=%4.0f%% idle=%4.0f%%  drift=%.2f\n",
				snap.Time.Round(time.Second), class,
				100*comp["io"], 100*comp["mem"], 100*comp["idle"], online.DriftScore())
		}
	}
	final, err := online.Class()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final majority class: %s after %d snapshots\n", final.Display(), online.Seen())

	// Show that the filter stage works on a live multicast pool too:
	// rebuild the same feed through a bus with a second noisy node.
	bus := ganglia.NewBus()
	prof, err := profiler.New(bus, run.Trace.Schema())
	if err != nil {
		log.Fatal(err)
	}
	names := run.Trace.Schema().Names()
	for i := 0; i < run.Trace.Len(); i++ {
		snap := run.Trace.At(i)
		for j, name := range names {
			bus.Announce(ganglia.Announcement{Node: snap.Node, Metric: name, Value: snap.Values[j], At: snap.Time})
			bus.Announce(ganglia.Announcement{Node: "neighbor-vm", Metric: name, Value: 1, At: snap.Time})
		}
	}
	filtered, err := prof.Extract(run.Trace.Node(), 0, run.Trace.At(run.Trace.Len()-1).Time)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance filter: kept %d/%d announcements for node %s\n",
		filtered.Len()*len(names), prof.Seen(), filtered.Node())
}
