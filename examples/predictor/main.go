// Predictor: execution-time prediction from learned class compositions —
// the run-time-prediction complement the paper positions its classifier
// next to (Section 7). Several historical runs of each application are
// profiled and classified; the predictor then estimates a new run's
// execution time from the k most similar historical runs in
// class-composition space.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/workload"
)

func main() {
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Build history: three runs each of three applications with
	// different seeds (input jitter varies run times).
	apps := []string{"CH3D", "PostMark", "Sftp"}
	for _, app := range apps {
		entry, err := workload.Find(app)
		if err != nil {
			log.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			report, err := svc.ProfileAndClassify(entry, seed)
			if err != nil {
				log.Fatalf("profile %s: %v", app, err)
			}
			fmt.Printf("history: %-9s run %d  class=%-7s elapsed=%v\n",
				app, seed, report.Result.Class, report.Elapsed.Round(time.Second))
		}
	}

	p, err := predict.New(svc.DB(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredictor over %d historical runs:\n", p.Len())
	for _, app := range apps {
		est, err := p.PredictApp(svc.DB(), app)
		if err != nil {
			log.Fatalf("predict %s: %v", app, err)
		}
		fmt.Printf("  %-9s predicted %v (spread ±%v)\n",
			app, est.Execution.Round(time.Second), est.Spread.Round(time.Second))
	}

	// Validate against a held-out fourth run of each application.
	fmt.Println("\nheld-out fourth runs:")
	for _, app := range apps {
		entry, err := workload.Find(app)
		if err != nil {
			log.Fatal(err)
		}
		report, err := svc.ProfileAndClassify(entry, 4)
		if err != nil {
			log.Fatal(err)
		}
		est, err := p.Predict(report.Result.Composition)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (est.Execution.Seconds() - report.Elapsed.Seconds()) / report.Elapsed.Seconds()
		fmt.Printf("  %-9s actual %v, predicted %v (%+.1f%%)\n",
			app, report.Elapsed.Round(time.Second), est.Execution.Round(time.Second), errPct)
	}
}
