// Package repro is a complete Go reproduction of Zhang & Figueiredo,
// "Application Classification through Monitoring and Learning of
// Resource Consumption Patterns" (IPDPS 2006): a PCA + 3-nearest-
// neighbour classifier that learns an application's resource-consumption
// class (CPU-, I/O-, paging-, network-intensive, or idle) from
// system-level metrics collected while the application runs in a
// dedicated virtual machine, plus the class-aware scheduling that class
// knowledge enables.
//
// The module root carries the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation, plus
// ablations. The library lives under internal/ (see README.md for the
// architecture map), the executables under cmd/, and runnable examples
// under examples/.
package repro
